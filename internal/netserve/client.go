package netserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"omniware/internal/scope"
	"omniware/internal/serve/metrics"
	"omniware/internal/trace"
)

// Client talks to an omniserved instance. It is the programmatic face
// of the omnictl CLI and what the integration tests drive the daemon
// with.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
	// PeerAuth is the shared cluster secret sent on /v1/peer/*
	// requests (X-Omni-Peer-Auth). Only the cluster engine needs it;
	// the public endpoints ignore it.
	PeerAuth string
}

// StatusError is a non-2xx response: the HTTP status plus the error
// body, with Retry-After surfaced for 429/503 so callers can back off
// precisely and the server's request ID so the refusal can be
// correlated with its logs.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter int    // seconds; 0 when the server sent none
	RequestID  string // X-Omni-Request-Id; "" when the server sent none
}

func (e *StatusError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("server returned %d: %s (request %s)", e.Code, e.Message, e.RequestID)
	}
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues the request and decodes the JSON response into out,
// converting non-2xx responses into *StatusError.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusErrorFrom(resp, body)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// statusErrorFrom builds the *StatusError for a non-2xx response.
func statusErrorFrom(resp *http.Response, body []byte) *StatusError {
	se := &StatusError{Code: resp.StatusCode}
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		se.Message = ae.Error
	} else {
		se.Message = string(bytes.TrimSpace(body))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		se.RetryAfter, _ = strconv.Atoi(ra)
	}
	se.RequestID = resp.Header.Get(RequestIDHeader)
	return se
}

// Upload sends an OMW-encoded module blob and returns the server's
// description of it (including the content hash Exec needs).
func (c *Client) Upload(blob []byte) (*UploadResponse, error) {
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/modules", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var out UploadResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RetryPolicy bounds ExecRetry. The zero value selects the defaults.
type RetryPolicy struct {
	// Max is the retry budget after the first attempt (default 3).
	// When it runs out the last refusal is returned.
	Max int
	// MaxDelay caps a single backoff, whatever Retry-After asked for
	// (default 5s). The server's hint is authoritative below the cap.
	MaxDelay time.Duration
	// Sleep replaces time.Sleep (tests inject a recorder; nil = real).
	Sleep func(time.Duration)
}

// Retryable reports whether err is a shed response worth retrying: a
// 429 (rate limit or admission-queue full) or a 503 (draining). The
// client backs off and retries those; everything else — 4xx misuse,
// transport failures — is returned to the caller as-is.
func Retryable(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable
}

// ExecRetry is Exec with a bounded retry loop over shed responses,
// honoring the server's Retry-After hint: on a 429/503 it sleeps the
// advertised seconds (capped by pol.MaxDelay, with a small default
// when the server sent no hint) and tries again, at most pol.Max
// times. This is the client half of the server's backpressure
// contract — the server sheds cheaply and immediately, and the client
// owns the retry schedule.
func (c *Client) ExecRetry(r ExecRequest, pol RetryPolicy) (*ExecResponse, error) {
	if pol.Max <= 0 {
		pol.Max = 3
	}
	if pol.MaxDelay <= 0 {
		pol.MaxDelay = 5 * time.Second
	}
	sleep := pol.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.Exec(r)
		if err == nil || !Retryable(err) || attempt >= pol.Max {
			return resp, err
		}
		d := 100 * time.Millisecond // server sent no hint
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > 0 {
			d = time.Duration(se.RetryAfter) * time.Second
		}
		if d > pol.MaxDelay {
			d = pol.MaxDelay
		}
		sleep(d)
	}
}

// Exec runs an uploaded module and returns the outcome.
func (c *Client) Exec(r ExecRequest) (*ExecResponse, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/exec", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var out ExecResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the server's counter snapshot.
func (c *Client) Metrics() (*metrics.Snapshot, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	var out metrics.Snapshot
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsProm fetches the counter snapshot in the Prometheus text
// exposition format.
func (c *Client) MetricsProm() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("Accept", PromContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(body)),
			RequestID: resp.Header.Get(RequestIDHeader)}
	}
	return string(body), nil
}

// Trace fetches one job's full span tree by job ID.
func (c *Client) Trace(id string) (*trace.Trace, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/trace/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	var out trace.Trace
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RecentTraces lists summaries of up to n recent finished jobs,
// newest first.
func (c *Client) RecentTraces(n int) ([]TraceSummary, error) {
	u := c.Base + "/v1/trace/recent"
	if n > 0 {
		u += "?n=" + strconv.Itoa(n)
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	var out []TraceSummary
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SlowTraces lists the K slowest traces a node ever finished, slowest
// first.
func (c *Client) SlowTraces() ([]scope.Exemplar, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/trace/slow", nil)
	if err != nil {
		return nil, err
	}
	var out []scope.Exemplar
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ClusterMetrics fetches the fleet-merged view from one node's
// /v1/cluster/metrics fan-out.
func (c *Client) ClusterMetrics() (*scope.Fleet, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/cluster/metrics", nil)
	if err != nil {
		return nil, err
	}
	var out scope.Fleet
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes /healthz; nil means the server is up and not
// draining.
func (c *Client) Health() error {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}
