//go:build !race

package netserve_test

const raceEnabled = false
