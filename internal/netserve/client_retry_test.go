package netserve_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"omniware/internal/netserve"
	"omniware/internal/serve"
)

// The client half of the backpressure contract: saturating the
// admission queue produces 429s whose Retry-After the Go client
// surfaces in StatusError, and the bounded-retry helper honors that
// hint and eventually lands the job once the queue drains.
func TestClientSurfacesRetryAfterAndRetries(t *testing.T) {
	cl, _, _ := startServer(t,
		serve.Config{Workers: 1, QueueCap: 1},
		netserve.Config{Rate: 10000, Burst: 10000})

	spin := buildBlob(t, `int main(void){ for(;;); return 0; }`)
	up, err := cl.Upload(spin)
	if err != nil {
		t.Fatal(err)
	}

	// Saturate: one spinner on the worker, one in the queue. A short
	// deadline bounds how long the pool stays full.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips", DeadlineMs: 1500})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := cl.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if snap.QueueDepth >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spinners never saturated the pool: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A plain Exec against the full queue must surface the server's
	// Retry-After in the typed error, not swallow it.
	_, err = cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips", DeadlineMs: 1500})
	var se *netserve.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("saturated exec: %v", err)
	}
	if se.Code != 429 || se.RetryAfter < 1 {
		t.Fatalf("429 without a usable Retry-After: %+v", se)
	}
	if !netserve.Retryable(err) {
		t.Fatalf("shed response not classified retryable: %v", err)
	}

	// The bounded-retry helper: every backoff it takes must honor the
	// server's hint (capped by the policy), and with the spinners dying
	// at their deadline the retried job must eventually be admitted.
	var mu sync.Mutex
	var delays []time.Duration
	pol := netserve.RetryPolicy{
		Max:      200,
		MaxDelay: 50 * time.Millisecond,
		Sleep: func(d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
			time.Sleep(d)
		},
	}
	quick := buildBlob(t, `int main(void){ return 7; }`)
	upq, err := cl.Upload(quick)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.ExecRetry(netserve.ExecRequest{Module: upq.Hash, Target: "mips", DeadlineMs: 2000}, pol)
	if err != nil {
		t.Fatalf("ExecRetry never landed: %v", err)
	}
	if res.Status != "ok" || res.Exit != 7 {
		t.Fatalf("retried job: %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delays) == 0 {
		t.Fatal("ExecRetry succeeded without ever being shed; saturation did not hold")
	}
	for _, d := range delays {
		if d > pol.MaxDelay {
			t.Fatalf("backoff %v exceeds policy cap %v", d, pol.MaxDelay)
		}
		if d <= 0 {
			t.Fatalf("non-positive backoff %v", d)
		}
	}
	wg.Wait()

	// A non-retryable refusal must come back immediately: unknown
	// module is a 404, and the helper must not burn retries on it.
	var before int
	before = len(delays)
	_, err = cl.ExecRetry(netserve.ExecRequest{Module: "feedfacefeedface", Target: "mips"}, pol)
	if !errors.As(err, &se) || se.Code != 404 {
		t.Fatalf("unknown module: %v", err)
	}
	if len(delays) != before {
		t.Fatalf("helper slept on a non-retryable error")
	}
}
