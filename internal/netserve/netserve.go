// Package netserve is the network front door of the Omniware host: an
// HTTP layer over the internal/serve worker pool that makes the
// system an actual mobile-code *service* — modules arrive over the
// wire in the canonical OMW encoding, execution requests name them by
// content hash, and results stream back as JSON.
//
// The API surface:
//
//	POST /v1/modules        upload an OMW blob; returns its content hash
//	POST /v1/exec           run an uploaded module on a target machine
//	GET  /v1/metrics        server + cache counters; JSON by default, the
//	                        Prometheus text format when Accept asks for
//	                        "text/plain; version=0.0.4"
//	GET  /v1/trace/recent   summaries of recent finished job traces
//	GET  /v1/trace/slow     the K slowest traces this node ever served
//	GET  /v1/trace/{id}     one job's full span tree by job ID (stitched
//	                        across nodes when the job peer-filled)
//	GET  /v1/cluster/metrics fleet fan-out: per-node + merged counters,
//	                        histograms, peer health and slow exemplars
//	GET  /healthz           liveness ("ok", or "draining" with 503)
//
// Every response — success or refusal — carries an X-Omni-Request-Id
// header, so a 429 or 400 can be correlated with server logs even
// though it never produced a job.
//
// Overload policy, in order of the defenses a request meets:
//
//  1. Per-client token-bucket rate limiting (429 + Retry-After).
//  2. A bounded admission queue (serve.Server's): when workers are
//     saturated and the queue is full, TrySubmit refuses immediately
//     and the request gets 429 + Retry-After within milliseconds —
//     the server sheds load instead of queueing unboundedly.
//  3. Per-request deadlines, capped by the server, mapped onto the
//     simulator interrupt hook so a runaway module burns worker time
//     bounded by its deadline, not by its own choosing.
//
// Draining: SetDraining flips /healthz to 503 (so load balancers stop
// routing here) and refuses new exec/upload work with 503, while
// requests already admitted keep their workers until they finish —
// the graceful half of SIGTERM handling; the process owner then
// closes the HTTP server and the pool.
package netserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/ovm"
	"omniware/internal/serve"
	"omniware/internal/target"
	"omniware/internal/trace"
	"omniware/internal/translate"
	"omniware/internal/wire"
)

// RequestIDHeader is set on every response, including refusals, so
// clients can name the request when reporting a failure.
const RequestIDHeader = "X-Omni-Request-Id"

// Defaults for Config zero values.
const (
	DefaultMaxModules      = 256
	DefaultMaxModuleBytes  = 16 << 20
	DefaultRate            = 50  // requests/second/client
	DefaultBurst           = 100 // bucket capacity
	DefaultDeadline        = 10 * time.Second
	DefaultMaxDeadline     = 60 * time.Second
	DefaultResultWait      = 5 * time.Minute // hard cap on waiting for a result
	maxExecBodyBytes       = 1 << 20
	retryAfterQueueSeconds = 1
)

// Config sizes a Handler. Zero values select the defaults above.
type Config struct {
	Server         *serve.Server // required: the worker pool
	MaxModules     int           // uploaded-module registry cap (LRU beyond it)
	MaxModuleBytes int64         // upload size limit
	Rate           float64       // per-client token refill, requests/second
	Burst          float64       // per-client bucket size
	Deadline       time.Duration // default per-request deadline
	MaxDeadline    time.Duration // cap on client-requested deadlines
	Logf           func(format string, args ...any)
	// Audit is the admission-time static-analysis gate (see audit.go).
	// The zero value leaves gating off; GET /v1/audit/{hash} works
	// regardless.
	Audit AuditConfig
	// Peer, when non-nil, enables cluster mode: the /v1/peer/*
	// endpoints (serving this node's modules and verified translations
	// to its peers) and the exec-miss module fetch through the hooks.
	Peer PeerHooks
	// PeerAuth is the shared cluster secret every /v1/peer/* request
	// must present in the X-Omni-Peer-Auth header. Required whenever
	// Peer is set: the peer surface accepts replication pushes and
	// bypasses the per-client rate limiter, so it is never exposed
	// unauthenticated.
	PeerAuth string
}

// Handler is the HTTP layer. Create with New; it implements
// http.Handler.
type Handler struct {
	cfg      Config
	srv      *serve.Server
	mux      *http.ServeMux
	lim      *limiter
	draining atomic.Bool
	jobSeq   atomic.Uint64
	reqSeq   atomic.Uint64

	mu       sync.Mutex
	mods     map[string]modEntry
	modOrder []string // insertion order for registry eviction
}

// modEntry is one registered module plus its canonical encoding (what
// the peer endpoint serves — the bytes whose hash is the identity) and
// the wire-decode cost paid for it, which exec jobs inherit as the
// "decode" stage of their trace.
type modEntry struct {
	mod    *ovm.Module
	blob   []byte
	decode time.Duration
	audit  time.Duration // admission-audit cost, backdated into exec traces
}

// New builds a Handler over cfg.Server.
func New(cfg Config) (*Handler, error) {
	if cfg.Server == nil {
		return nil, errors.New("netserve: Config.Server is required")
	}
	if cfg.Peer != nil && cfg.PeerAuth == "" {
		return nil, errors.New("netserve: cluster mode requires Config.PeerAuth (the shared peer secret)")
	}
	if err := cfg.Audit.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxModules <= 0 {
		cfg.MaxModules = DefaultMaxModules
	}
	if cfg.MaxModuleBytes <= 0 {
		cfg.MaxModuleBytes = DefaultMaxModuleBytes
	}
	if cfg.Rate <= 0 {
		cfg.Rate = DefaultRate
	}
	if cfg.Burst <= 0 {
		cfg.Burst = DefaultBurst
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = DefaultDeadline
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = DefaultMaxDeadline
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	h := &Handler{
		cfg:  cfg,
		srv:  cfg.Server,
		lim:  newLimiter(cfg.Rate, cfg.Burst),
		mods: map[string]modEntry{},
	}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("POST /v1/modules", h.handleUpload)
	h.mux.HandleFunc("POST /v1/modules/batch", h.handleUploadBatch)
	h.mux.HandleFunc("POST /v1/exec", h.handleExec)
	h.mux.HandleFunc("GET /v1/audit/{hash}", h.handleAuditGet)
	h.mux.HandleFunc("GET /v1/metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /v1/trace/recent", h.handleTraceRecent)
	h.mux.HandleFunc("GET /v1/trace/slow", h.handleTraceSlow)
	h.mux.HandleFunc("GET /v1/trace/{id}", h.handleTraceGet)
	h.mux.HandleFunc("GET /v1/cluster/metrics", h.handleClusterMetrics)
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	if cfg.Peer != nil {
		h.mux.HandleFunc("GET /v1/peer/module/{hash}", h.peerAuth(h.handlePeerModule))
		h.mux.HandleFunc("GET /v1/peer/translation/{hash}/{target}", h.peerAuth(h.handlePeerTranslation))
		h.mux.HandleFunc("POST /v1/peer/translation/{hash}/{target}", h.peerAuth(h.handlePeerPush))
	}
	return h, nil
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Stamp the request ID before any handler can write: refusals (429,
	// 400, 5xx) carry it just like successes. Peer-to-peer requests
	// forward the ORIGINATING request's id instead of minting a fresh
	// one, so a remote failure names a request that exists — on the
	// origin node, where the operator is looking.
	rid := ""
	if strings.HasPrefix(r.URL.Path, "/v1/peer/") {
		rid = r.Header.Get(RequestIDHeader)
	}
	if rid == "" {
		rid = fmt.Sprintf("r%d", h.reqSeq.Add(1))
	}
	w.Header().Set(RequestIDHeader, rid)
	h.mux.ServeHTTP(w, r)
}

// SetDraining flips the handler into (or out of) drain mode: health
// checks fail so routers stop sending traffic, and new uploads/execs
// are refused with 503 while admitted work finishes.
func (h *Handler) SetDraining(v bool) { h.draining.Store(v) }

// Draining reports drain mode.
func (h *Handler) Draining() bool { return h.draining.Load() }

// apiError is the uniform JSON error body. RequestID echoes the
// response's X-Omni-Request-Id — on peer endpoints that is the
// origin's forwarded id, so the body a cluster client reads back names
// a request the origin can actually find in its own logs.
type apiError struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get(RequestIDHeader),
	})
}

// clientKey identifies a client for rate limiting: the remote host
// (without port), so reconnecting does not reset the bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// gate applies the request-path defenses shared by upload and exec:
// drain mode, then the per-client rate limit. It reports false after
// writing the refusal.
func (h *Handler) gate(w http.ResponseWriter, r *http.Request) bool {
	if h.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return false
	}
	if retry, ok := h.lim.allow(clientKey(r), time.Now()); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return false
	}
	return true
}

// UploadResponse describes an accepted module.
type UploadResponse struct {
	Hash     string `json:"hash"`
	Insts    int    `json:"insts"`
	DataLen  int    `json:"dataLen"`
	BSSSize  uint32 `json:"bssSize"`
	Entry    int32  `json:"entry"`
	Replaced bool   `json:"replaced"` // an identical module was already registered
	// Audit is the admission audit's summary — capability manifest,
	// stack proof, report digest — present when the gate analyzed the
	// module (warn or enforce mode).
	Audit *AuditSummary `json:"audit,omitempty"`
}

func (h *Handler) handleUpload(w http.ResponseWriter, r *http.Request) {
	if !h.gate(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, h.cfg.MaxModuleBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading module: %v", err)
		return
	}
	decodeStart := time.Now()
	mod, blob, hash, err := decodeCanonical(body)
	decodeDur := time.Since(decodeStart)
	h.srv.Metrics().Decode.Observe(decodeDur)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out, err := h.runAudit(mod, hash, "module "+hash)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if out.rejected {
		writeError(w, http.StatusUnprocessableEntity,
			"audit rejected module %s: %s", hash, violationText(out.violations))
		return
	}
	existed := h.register(modEntry{mod: mod, blob: blob, decode: decodeDur, audit: out.dur}, hash)
	resp := uploadResponseFor(mod, hash, existed)
	resp.Audit = out.summary()
	writeJSON(w, http.StatusOK, resp)
}

// decodeCanonical decodes an OMW blob strictly and returns the module
// together with its canonical re-encoding and content hash. Hashing
// the re-encoding, not the received bytes: the decoder is strict
// enough that they should be identical, but the canonical form is the
// identity the cache keys on.
func decodeCanonical(body []byte) (*ovm.Module, []byte, string, error) {
	mod, err := wire.DecodeModule(body)
	if err != nil {
		return nil, nil, "", fmt.Errorf("decoding module: %w", err)
	}
	blob, err := wire.EncodeModule(mod)
	if err != nil {
		return nil, nil, "", fmt.Errorf("re-encoding module: %w", err)
	}
	return mod, blob, wire.Hash(blob), nil
}

// register installs one module in the registry (FIFO-evicting past the
// cap) and reports whether an identical module was already present.
func (h *Handler) register(ent modEntry, hash string) (existed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, existed = h.mods[hash]; existed {
		return true
	}
	h.mods[hash] = ent
	h.modOrder = append(h.modOrder, hash)
	for len(h.modOrder) > h.cfg.MaxModules {
		evict := h.modOrder[0]
		h.modOrder = h.modOrder[1:]
		delete(h.mods, evict)
	}
	return false
}

func uploadResponseFor(mod *ovm.Module, hash string, existed bool) UploadResponse {
	return UploadResponse{
		Hash:     hash,
		Insts:    len(mod.Text),
		DataLen:  len(mod.Data),
		BSSSize:  mod.BSSSize,
		Entry:    mod.Entry,
		Replaced: existed,
	}
}

// ExecRequest asks for one run of an uploaded module.
type ExecRequest struct {
	Module     string `json:"module"`     // content hash from upload
	Target     string `json:"target"`     // mips | sparc | ppc | x86
	SFI        *bool  `json:"sfi"`        // default true
	MaxSteps   uint64 `json:"maxSteps"`   // instruction budget (0 = core default)
	DeadlineMs int    `json:"deadlineMs"` // wall-clock deadline (0 = server default)
	Heap       uint32 `json:"heap"`       // heap size (0 = default)
	Stack      uint32 `json:"stack"`      // stack size (0 = default)
	// Check additionally runs the module on the OmniVM interpreter
	// and reports parity — the differential-testing hook CI uses.
	Check bool `json:"check"`
	// Trace echoes the job's full span tree in the response (it is
	// also retrievable later from GET /v1/trace/{id}).
	Trace bool `json:"trace"`
}

// ExecResponse is one run's outcome.
type ExecResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"` // ok | fault(contained) | error
	Exit   int32  `json:"exit"`
	Output string `json:"output"`
	Fault  string `json:"fault,omitempty"`
	Insts  uint64 `json:"insts"`
	Cycles uint64 `json:"cycles"`
	Cached bool   `json:"cached"`
	Err    string `json:"err,omitempty"`
	// Parity is present only when the request set Check: true when
	// the translated run matched the interpreter (same exit code and
	// output, or both faulted).
	Parity *bool `json:"parity,omitempty"`
	// QueueWaitUs/RunUs split the job's server wall-clock: time spent
	// admitted-but-queued vs. dequeue-to-completion.
	QueueWaitUs int64 `json:"queueWaitUs"`
	RunUs       int64 `json:"runUs"`
	// Trace is the job's span tree, present when the request asked.
	Trace *trace.Trace `json:"trace,omitempty"`
}

func (h *Handler) handleExec(w http.ResponseWriter, r *http.Request) {
	if !h.gate(w, r) {
		return
	}
	var req ExecRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxExecBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	mach := target.ByName(req.Target)
	if mach == nil {
		writeError(w, http.StatusBadRequest, "unknown target %q", req.Target)
		return
	}

	// Dash-separated: job IDs double as /v1/trace/{id} path segments.
	// Minted before the module fetch so a cluster fetch can carry the
	// job's trace identity to the serving peer.
	id := fmt.Sprintf("exec-%d-%s-%s", h.jobSeq.Add(1), req.Module[:min(8, len(req.Module))], mach.Name)
	rid := w.Header().Get(RequestIDHeader)

	h.mu.Lock()
	ent := h.mods[req.Module]
	h.mu.Unlock()
	var mfDur time.Duration
	var mfRemote *trace.Span
	var mfPeer string
	if ent.mod == nil && h.cfg.Peer != nil {
		// Cluster mode: the module may have been uploaded through
		// another member. Fetching it by content address is trust-free
		// — the hash of the canonical re-encoding must match the name —
		// and the audit gate applies on arrival, exactly as it would
		// have at upload: a cold node re-derives the audit itself.
		fetchStart := time.Now()
		var aerr error
		ent, mfRemote, mfPeer, aerr = h.fetchModuleViaPeers(req.Module, mcache.PeerOrigin{TraceID: id, RequestID: rid})
		mfDur = time.Since(fetchStart)
		if aerr != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", aerr)
			return
		}
	}
	if ent.mod == nil {
		writeError(w, http.StatusNotFound, "module %q not uploaded", req.Module)
		return
	}
	mod := ent.mod
	deadline := h.cfg.Deadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > h.cfg.MaxDeadline {
		deadline = h.cfg.MaxDeadline
	}
	sfi := req.SFI == nil || *req.SFI

	job := serve.Job{
		ID:                id,
		Mod:               mod,
		Machine:           mach,
		Opt:               translate.Paper(sfi),
		Heap:              req.Heap,
		Stack:             req.Stack,
		MaxSteps:          req.MaxSteps,
		Timeout:           deadline,
		Decode:            ent.decode,
		Audit:             ent.audit,
		RequestID:         rid,
		ModuleFetch:       mfDur,
		ModuleFetchRemote: mfRemote,
		ModuleFetchPeer:   mfPeer,
	}
	ch, ok := h.srv.TrySubmit(job)
	if !ok {
		// Workers saturated and the admission queue full (or the pool
		// is closing): shed the request now, cheaply, instead of
		// parking it. The client owns the retry.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterQueueSeconds))
		writeError(w, http.StatusTooManyRequests, "admission queue full")
		return
	}

	var res serve.Result
	select {
	case res = <-ch:
	case <-time.After(deadline + DefaultResultWait):
		// The deadline interrupt should have fired long ago; this is a
		// backstop against a stuck worker, not a normal path.
		writeError(w, http.StatusInternalServerError, "job %s result overdue", id)
		return
	}

	resp := ExecResponse{
		ID:          res.ID,
		Exit:        res.ExitCode,
		Output:      res.Output,
		Fault:       res.Fault,
		Insts:       res.Insts,
		Cycles:      res.Cycles,
		Cached:      res.Cached,
		QueueWaitUs: res.QueueWait.Microseconds(),
		RunUs:       res.Run.Microseconds(),
	}
	if req.Trace {
		resp.Trace = res.Trace
	}
	switch {
	case res.Err != nil:
		resp.Status = "error"
		resp.Err = res.Err.Error()
	case res.Faulted:
		resp.Status = "fault(contained)"
	default:
		resp.Status = "ok"
	}
	if req.Check {
		parity := h.checkParity(mod, req, res)
		resp.Parity = &parity
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkParity runs the module on the OmniVM interpreter — the
// semantic reference — under the same budgets and compares outcomes.
// A faulting reference matches a faulting run; exit codes and output
// must agree otherwise.
func (h *Handler) checkParity(mod *ovm.Module, req ExecRequest, res serve.Result) bool {
	hst, err := core.NewHost(mod, core.RunConfig{
		Heap: req.Heap, Stack: req.Stack, MaxSteps: req.MaxSteps,
	})
	if err != nil {
		return false
	}
	ref, err := hst.RunInterp()
	if err != nil || res.Err != nil {
		// Job-level errors (budget, deadline) have no parity claim.
		return false
	}
	if ref.Faulted || res.Faulted {
		return ref.Faulted && res.Faulted
	}
	return res.ExitCode == ref.ExitCode && res.Output == hst.Output()
}

// PromContentType is the Content-Type of the Prometheus text
// exposition format this server speaks.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsProm reports whether the Accept header asks for the Prometheus
// text exposition format: any listed media range of text/plain (or
// */*+version) carrying version=0.0.4, the way Prometheus scrapers
// negotiate.
func wantsProm(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ";")
		mediaType := strings.TrimSpace(fields[0])
		if mediaType != "text/plain" {
			continue
		}
		for _, p := range fields[1:] {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok &&
				strings.TrimSpace(k) == "version" && strings.TrimSpace(v) == "0.0.4" {
				return true
			}
		}
	}
	return false
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := h.srv.Snapshot()
	if wantsProm(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", PromContentType)
		_, _ = io.WriteString(w, snap.Prom())
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// TraceSummary is one line of the recent-trace listing.
type TraceSummary struct {
	ID         string  `json:"id"`
	Kind       string  `json:"kind"`
	Target     string  `json:"target,omitempty"`
	Status     string  `json:"status"`
	DurUs      int64   `json:"durUs"`
	Insts      uint64  `json:"insts"`
	SandboxPct float64 `json:"sandboxPct"`
}

func summarize(tr *trace.Trace) TraceSummary {
	return TraceSummary{
		ID:         tr.ID,
		Kind:       tr.Kind,
		Target:     tr.Target,
		Status:     tr.Status,
		DurUs:      tr.Duration().Microseconds(),
		Insts:      tr.Insts,
		SandboxPct: tr.SandboxPct(),
	}
}

func (h *Handler) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "bad n %q", q)
			return
		}
		n = v
	}
	recent := h.srv.Traces().Recent(n)
	out := make([]TraceSummary, 0, len(recent))
	for _, tr := range recent {
		out = append(out, summarize(tr))
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *Handler) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := h.srv.Traces().Get(id)
	if tr == nil {
		// A slow exemplar can outlive the recency ring; still servable.
		for _, s := range h.srv.Slow().List() {
			if s.ID == id {
				tr = s
				break
			}
		}
	}
	if tr == nil {
		writeError(w, http.StatusNotFound, "no trace for job %q (evicted or never run)", id)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
