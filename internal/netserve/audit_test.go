package netserve_test

import (
	"errors"
	"net/http"
	"strings"
	"testing"

	"omniware/internal/netserve"
	"omniware/internal/serve"
	"omniware/internal/wire"
)

// recSrc is a directly recursive module — the shape the enforce gate
// must refuse with the cycle named.
const recSrc = `
int spin(int n) { if (n <= 0) return 0; return spin(n - 1) + 1; }
int main(void) { return spin(40); }
`

// chainSrc is a bounded three-deep call chain: auditable, admissible,
// and deep enough that a tight stack cap refuses it with the proven
// bound in the error body.
const chainSrc = `
int leaf(int x) { return x * 2 + 1; }
int mid(int x) { int a[8]; int i; for (i = 0; i < 8; i++) a[i] = leaf(x + i); return a[3] + a[5]; }
int top(int x) { return mid(x) + mid(x + 1); }
int main(void) { return top(3) & 127; }
`

func status422(t *testing.T, err error) *netserve.StatusError {
	t.Helper()
	var se *netserve.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a StatusError", err)
	}
	if se.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%s)", se.Code, se.Message)
	}
	return se
}

// Warn mode admits everything, annotates the upload response with the
// manifest + stack proof, counts violations, and serves the full
// report from /v1/audit/{hash}.
func TestAuditWarnMode(t *testing.T) {
	cl, _, srv := startServer(t, serve.Config{Workers: 1}, netserve.Config{
		Audit: netserve.AuditConfig{Mode: netserve.AuditWarn, MaxStackBytes: 1},
	})
	up, err := cl.Upload(buildBlob(t, chainSrc))
	if err != nil {
		t.Fatalf("warn mode refused an over-cap module: %v", err)
	}
	if up.Audit == nil {
		t.Fatal("upload response carries no audit summary")
	}
	if !up.Audit.StackBounded || up.Audit.StackBytes <= 0 {
		t.Fatalf("chain module stack proof: %+v", up.Audit)
	}
	if len(up.Audit.Capabilities) == 0 {
		t.Fatalf("no capability manifest: %+v", up.Audit)
	}
	if len(up.Audit.Warnings) == 0 || !strings.Contains(up.Audit.Warnings[0], "stack") {
		t.Fatalf("warn mode did not surface the stack violation: %+v", up.Audit.Warnings)
	}

	rep, err := cl.Audit(up.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hash != up.Hash || rep.Digest() != up.Audit.Digest {
		t.Fatalf("served report names %s digest %s; upload said %s digest %s",
			rep.Hash, rep.Digest(), up.Hash, up.Audit.Digest)
	}
	if len(rep.Functions) == 0 || len(rep.Cost) == 0 {
		t.Fatalf("served report is hollow: %+v", rep)
	}

	snap := srv.Snapshot()
	if snap.AuditWarns["stack"] == 0 {
		t.Fatalf("stack warning not counted: %+v", snap.AuditWarns)
	}
	if snap.AuditRejects["stack"] != 0 {
		t.Fatalf("warn mode counted a reject: %+v", snap.AuditRejects)
	}

	// The exec trace carries the backdated upload-time audit span.
	res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Root.Find("audit") == nil {
		t.Fatal("exec trace has no audit span")
	}
}

// Enforce mode refuses a recursive module at upload with the cycle
// named, and a deep-chain module over the stack cap with the proven
// bound in the body. Nothing refused is ever registered.
func TestAuditEnforceRejects(t *testing.T) {
	cl, _, srv := startServer(t, serve.Config{Workers: 1}, netserve.Config{
		Audit: netserve.AuditConfig{Mode: netserve.AuditEnforce},
	})
	_, err := cl.Upload(buildBlob(t, recSrc))
	se := status422(t, err)
	if !strings.Contains(se.Message, "recursion cycle") || !strings.Contains(se.Message, "spin") {
		t.Fatalf("422 body does not name the recursion cycle: %q", se.Message)
	}
	if srv.Snapshot().AuditRejects["recursion"] == 0 {
		t.Fatal("recursion reject not counted")
	}
	recHash := wire.Hash(buildBlob(t, recSrc))
	if _, err := cl.Exec(netserve.ExecRequest{Module: recHash, Target: "mips"}); err == nil {
		t.Fatal("rejected module is executable")
	}

	// Stack cap: the same server would admit the chain (no caps beyond
	// enforce mode); a capped server names the proven bound.
	if _, err := cl.Upload(buildBlob(t, chainSrc)); err != nil {
		t.Fatalf("bounded module refused without caps: %v", err)
	}
	clCap, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{
		Audit: netserve.AuditConfig{Mode: netserve.AuditEnforce, MaxStackBytes: 8},
	})
	_, err = clCap.Upload(buildBlob(t, chainSrc))
	se = status422(t, err)
	if !strings.Contains(se.Message, "stack bound") || !strings.Contains(se.Message, "exceeds cap 8") {
		t.Fatalf("422 body does not state the stack bound: %q", se.Message)
	}
}

// Capability allow-lists gate on the manifest: a module that prints
// violates an exit-only list.
func TestAuditCapabilityGate(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{
		Audit: netserve.AuditConfig{Mode: netserve.AuditEnforce, Capabilities: []string{"exit"}},
	})
	_, err := cl.Upload(buildBlob(t, `int main(void){ _putc('x'); return 0; }`))
	se := status422(t, err)
	if !strings.Contains(se.Message, "capability") || !strings.Contains(se.Message, "putc") {
		t.Fatalf("422 body does not name the capability: %q", se.Message)
	}
	if _, err := cl.Upload(buildBlob(t, `int main(void){ return 7; }`)); err != nil {
		t.Fatalf("exit-only module refused: %v", err)
	}
}

// The peer-fill path is upload by another road: a cold node in enforce
// mode re-derives the audit on arrival and refuses a module its gate
// would have refused at upload — it is never registered or served.
func TestAuditPeerFillRejected(t *testing.T) {
	blob := buildBlob(t, recSrc)
	hash := wire.Hash(blob)
	hooks := &fakeHooks{mods: map[string][]byte{hash: blob}}
	cl, _, srv := startServer(t, serve.Config{Workers: 1}, netserve.Config{
		Peer:  hooks,
		Audit: netserve.AuditConfig{Mode: netserve.AuditEnforce},
	})
	_, err := cl.Exec(netserve.ExecRequest{Module: hash, Target: "mips"})
	se := status422(t, err)
	if !strings.Contains(se.Message, "peer-filled") || !strings.Contains(se.Message, "recursion cycle") {
		t.Fatalf("cold-node 422 body: %q", se.Message)
	}
	if srv.Snapshot().AuditRejects["recursion"] == 0 {
		t.Fatal("cold-node reject not counted")
	}
	// Still refused on retry — the rejection did not register anything.
	if _, err := cl.Exec(netserve.ExecRequest{Module: hash, Target: "mips"}); err == nil {
		t.Fatal("rejected peer-filled module served on retry")
	}

	// A warn-mode cold node admits the same module and records its
	// audit cost on the job trace.
	clW, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{
		Peer:  &fakeHooks{mods: map[string][]byte{hash: blob}},
		Audit: netserve.AuditConfig{Mode: netserve.AuditWarn},
	})
	res, err := clW.Exec(netserve.ExecRequest{Module: hash, Target: "mips", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Root.Find("audit") == nil {
		t.Fatal("peer-filled exec trace has no audit span")
	}
}

// Off mode (the zero value) gates nothing and annotates nothing, but
// /v1/audit/{hash} still derives on demand; an unknown hash is 404.
func TestAuditOffModeOnDemand(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})
	up, err := cl.Upload(buildBlob(t, recSrc))
	if err != nil {
		t.Fatal(err)
	}
	if up.Audit != nil {
		t.Fatalf("off mode annotated the upload: %+v", up.Audit)
	}
	rep, err := cl.Audit(up.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stack.Bounded || rep.Stack.Reason != "recursion" {
		t.Fatalf("on-demand report misses the recursion: %+v", rep.Stack)
	}
	if _, err := cl.Audit("feedface"); err == nil {
		t.Fatal("audit served for an unknown hash")
	}
}

func TestAuditConfigValidation(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	defer srv.Close()
	if _, err := netserve.New(netserve.Config{Server: srv, Audit: netserve.AuditConfig{Mode: "paranoid"}}); err == nil {
		t.Fatal("unknown audit mode accepted")
	}
}
