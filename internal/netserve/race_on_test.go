//go:build race

package netserve_test

// raceEnabled relaxes timing budgets and shrinks simulated workloads:
// the race detector slows the simulator by roughly an order of
// magnitude, and the contracts under test (shed fast, drain fully)
// are not about absolute wall-clock numbers.
const raceEnabled = true
