package load

import (
	"fmt"
	"net"
	"net/http"

	"omniware/internal/netserve"
	"omniware/internal/serve"
)

// Booted is an in-process omniserved instance on a loopback listener.
// omniload boots one when not pointed at an external server, so a
// benchmark run is still exercising the real HTTP stack — wire
// decode, routing, JSON — not a shortcut into the worker pool.
type Booted struct {
	Base    string
	Server  *serve.Server
	Handler *netserve.Handler

	hs *http.Server
	ln net.Listener
}

// BootOpts sizes the in-process instance. Zero values select the
// serve defaults.
type BootOpts struct {
	Workers  int
	QueueCap int
	// Audit is the admission-gate policy every booted node runs with
	// (zero value = off) — how a load run measures audit-on admission
	// overhead against the same workload.
	Audit netserve.AuditConfig
	Logf  func(format string, args ...any)
}

// Boot starts the instance. The per-client rate limiter is opened
// wide: the generator is the only client, and the interesting
// backpressure is the admission queue's, not the token bucket's.
func Boot(opts BootOpts) (*Booted, error) {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	pool := serve.New(serve.Config{Workers: opts.Workers, QueueCap: opts.QueueCap})
	h, err := netserve.New(netserve.Config{
		Server: pool,
		Rate:   1e9,
		Burst:  1e9,
		Audit:  opts.Audit,
		Logf:   opts.Logf,
	})
	if err != nil {
		pool.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pool.Close()
		return nil, fmt.Errorf("load: listen: %w", err)
	}
	b := &Booted{
		Base:    "http://" + ln.Addr().String(),
		Server:  pool,
		Handler: h,
		hs:      &http.Server{Handler: h},
		ln:      ln,
	}
	go func() { _ = b.hs.Serve(ln) }()
	return b, nil
}

// Close tears the instance down: stop accepting connections, then
// drain the pool.
func (b *Booted) Close() {
	_ = b.hs.Close()
	b.Server.Close()
}
