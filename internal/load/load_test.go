package load_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"omniware/internal/load"
)

func TestScheduleDeterministicAndWeighted(t *testing.T) {
	cfg := load.Config{
		Jobs:      400,
		Seed:      42,
		Workloads: load.Mix{load.TrivLoad: 3, "compress": 1},
		Targets:   load.Mix{"mips": 1, "x86": 1},
	}
	a, err := load.Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := load.Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	counts := map[string]int{}
	for _, s := range a {
		counts[s.Workload]++
		if s.Target != "mips" && s.Target != "x86" {
			t.Fatalf("target %q not in mix", s.Target)
		}
	}
	// 3:1 weighting over 400 draws: trivload should clearly dominate.
	if counts[load.TrivLoad] <= counts["compress"] {
		t.Fatalf("weights ignored: %v", counts)
	}
	if counts["compress"] == 0 {
		t.Fatalf("compress never drawn: %v", counts)
	}

	c, err := load.Schedule(load.Config{Jobs: 400, Seed: 43,
		Workloads: cfg.Workloads, Targets: cfg.Targets})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleRejectsBadMix(t *testing.T) {
	if _, err := load.Schedule(load.Config{Workloads: load.Mix{"li": -1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := load.Schedule(load.Config{Workloads: load.Mix{"li": 0}}); err == nil {
		t.Fatal("zero-total mix accepted")
	}
}

// One real end-to-end run against an in-process server: the report
// must validate, round-trip through JSON, and agree with itself
// across the client and server views.
func TestRunClosedLoop(t *testing.T) {
	b, err := load.Boot(load.BootOpts{Workers: 2, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	cfg := load.Config{
		Addr:      b.Base,
		Mode:      "closed",
		Clients:   4,
		Jobs:      24,
		Seed:      7,
		Workloads: load.Mix{load.TrivLoad: 1},
		Targets:   load.Mix{"mips": 1, "sparc": 1},
		Prewarm:   true,
		Check:     true,
	}
	rep, err := load.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Load.OK != 24 || rep.Load.Faults != 0 || rep.Load.Errors != 0 {
		t.Fatalf("outcomes: %+v", rep.Load)
	}
	if rep.Load.Parity != 0 || rep.Load.Checked != 24 {
		t.Fatalf("parity accounting: %+v", rep.Load)
	}
	// Prewarm ran one job per (workload, target) pair, so every
	// measured job hits the cache.
	if rep.Load.Warm != 24 || rep.Load.Cold != 0 {
		t.Fatalf("prewarmed run saw cache misses: warm=%d cold=%d", rep.Load.Warm, rep.Load.Cold)
	}
	if rep.Server.JobsRun != 24 {
		t.Fatalf("server ran %d jobs, want 24", rep.Server.JobsRun)
	}
	if rep.Server.SandboxPct <= 0 {
		t.Fatalf("SFI run attributed no sandbox overhead: %+v", rep.Server)
	}
	for _, stage := range []string{"queue_wait", "translate", "run"} {
		if rep.Server.Stages[stage].Count == 0 {
			t.Fatalf("stage %s missing from interval delta: %+v", stage, rep.Server.Stages)
		}
	}

	// The JSON artifact round-trips losslessly under strict decoding —
	// what omniload validate does to checked-in BENCH files.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back load.Report
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(&back); err != nil {
		t.Fatal(err)
	}

	out := load.Format(rep)
	for _, want := range []string{"jobs/sec", "warm=24", "stage run"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted report missing %q:\n%s", want, out)
		}
	}
}

func TestRunOpenLoop(t *testing.T) {
	b, err := load.Boot(load.BootOpts{Workers: 2, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	rep, err := load.Run(load.Config{
		Addr:      b.Base,
		Mode:      "open",
		Rate:      200,
		Jobs:      10,
		Seed:      1,
		Workloads: load.Mix{load.TrivLoad: 1},
		Targets:   load.Mix{"x86": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Validate(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Load.OK != 10 {
		t.Fatalf("open loop: %+v", rep.Load)
	}
	if rep.Config.Rate != 200 || rep.Config.Mode != "open" {
		t.Fatalf("config summary: %+v", rep.Config)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := &load.Report{
		Schema: load.Schema,
		Config: load.ConfigSummary{Jobs: 2},
		Load: load.LoadStats{
			DurationSec: 1, JobsPerSec: 2, Jobs: 2, OK: 2,
			Warm: 1, Cold: 1,
		},
	}
	if err := load.Validate(good); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := *good
	bad.Schema = "omniload/v0"
	if err := load.Validate(&bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
	bad = *good
	bad.Load.OK = 1 // ok+faults+errors no longer sums to jobs
	if err := load.Validate(&bad); err == nil {
		t.Fatal("broken accounting accepted")
	}
	bad = *good
	bad.Load.Latency = load.LatencyStats{P50Us: 5, P95Us: 3, P99Us: 4}
	if err := load.Validate(&bad); err == nil {
		t.Fatal("non-monotone quantiles accepted")
	}
}

func TestMeasureAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmarks in -short mode")
	}
	stats, err := load.MeasureAllocs()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no alloc stats")
	}
	for _, s := range stats {
		if s.Name == "" || s.AllocsPerOp < 0 {
			t.Fatalf("malformed stat %+v", s)
		}
	}
	// The fresh-host path allocates by construction (a new address
	// space per op); it anchors the pooled path's comparison.
	if stats[0].Name != "exec_fresh_host" || stats[0].AllocsPerOp == 0 {
		t.Fatalf("fresh-host baseline implausible: %+v", stats[0])
	}
	// The pooled path is the optimization under test: zero allocations
	// per warm-cache sandboxed execute.
	if stats[1].Name != "exec_pooled_host" {
		t.Fatalf("pooled stat missing: %+v", stats)
	}
	if !raceEnabled && stats[1].AllocsPerOp != 0 {
		t.Fatalf("pooled execute path allocates: %+v", stats[1])
	}
}
