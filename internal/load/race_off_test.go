//go:build !race

package load_test

const raceEnabled = false
