// Cluster-mode load generation: omniload can drive a set of
// omniserved cluster members through the hash-routing failover client
// instead of a single node. The server-side delta then comes from
// summing every member's metrics snapshot before and after the run —
// cluster throughput is the fleet's, not one node's.
package load

import (
	"fmt"

	"omniware/internal/cluster"
	"omniware/internal/netserve"
	"omniware/internal/serve/metrics"
	"omniware/internal/trace"
)

// client is the slice of netserve.Client the generator needs; the
// cluster-aware client satisfies it through clusterClient.
type client interface {
	Upload(blob []byte) (*netserve.UploadResponse, error)
	ExecRetry(r netserve.ExecRequest, pol netserve.RetryPolicy) (*netserve.ExecResponse, error)
}

// clusterClient adapts cluster.Client to the generator's interface.
type clusterClient struct {
	cl *cluster.Client
}

func (c clusterClient) Upload(blob []byte) (*netserve.UploadResponse, error) {
	return c.cl.Upload(blob)
}

func (c clusterClient) ExecRetry(r netserve.ExecRequest, pol netserve.RetryPolicy) (*netserve.ExecResponse, error) {
	return c.cl.ExecWithPolicy(r, pol)
}

// sumSnapshots folds the per-node metrics snapshots into one
// fleet-wide snapshot carrying exactly what Delta consumes: the
// monotonic counters, per-target instruction attribution, and the raw
// stage histogram buckets. Quantiles are recomputed downstream from
// the summed buckets, never averaged.
func sumSnapshots(snaps []*metrics.Snapshot) metrics.Snapshot {
	var out metrics.Snapshot
	out.Stages = map[string]metrics.StageSnapshot{}
	targets := map[string]*metrics.TargetSnapshot{}
	var targetOrder []string
	for _, s := range snaps {
		out.JobsSubmitted += s.JobsSubmitted
		out.JobsRun += s.JobsRun
		out.JobsFailed += s.JobsFailed
		out.FaultsContained += s.FaultsContained
		out.Timeouts += s.Timeouts
		out.Translations += s.Translations
		out.SimInsts += s.SimInsts
		out.SimCycles += s.SimCycles
		out.CacheHits += s.CacheHits
		out.CacheCoalesced += s.CacheCoalesced
		out.CacheMisses += s.CacheMisses
		out.CacheDiskHits += s.CacheDiskHits
		out.CachePeerHits += s.CachePeerHits
		out.CachePeerQuarantines += s.CachePeerQuarantines
		out.CacheSpotChecks += s.CacheSpotChecks
		out.CacheSpotCheckFails += s.CacheSpotCheckFails
		for name, st := range s.Stages {
			prev := out.Stages[name]
			out.Stages[name] = metrics.StageSnapshot{
				Count: prev.Count + st.Count,
				Hist:  addHist(prev.Hist, st.Hist),
			}
		}
		for _, ts := range s.Targets {
			agg, ok := targets[ts.Target]
			if !ok {
				cp := ts
				targets[ts.Target] = &cp
				targetOrder = append(targetOrder, ts.Target)
				continue
			}
			agg.Jobs += ts.Jobs
			agg.Insts += ts.Insts
			agg.AppInsts += ts.AppInsts
			agg.Sandbox += ts.Sandbox
			agg.Sched += ts.Sched
			for k, v := range ts.Counts {
				if agg.Counts == nil {
					agg.Counts = map[string]uint64{}
				}
				agg.Counts[k] += v
			}
		}
	}
	for _, name := range targetOrder {
		out.Targets = append(out.Targets, *targets[name])
	}
	return out
}

func addHist(a, b trace.HistSnapshot) trace.HistSnapshot {
	if len(a.Counts) == 0 {
		return b
	}
	out := trace.HistSnapshot{
		Count:  a.Count + b.Count,
		SumNs:  a.SumNs + b.SumNs,
		Counts: append([]uint64(nil), a.Counts...),
	}
	for i, c := range b.Counts {
		if i < len(out.Counts) {
			out.Counts[i] += c
		} else {
			out.Counts = append(out.Counts, c)
		}
	}
	return out
}

// FleetMetrics snapshots every member and sums — the fleet-wide view
// the cluster-mode server delta (and omnictl cluster metrics) uses.
func FleetMetrics(addrs []string) (*metrics.Snapshot, error) {
	snaps := make([]*metrics.Snapshot, 0, len(addrs))
	for _, a := range addrs {
		s, err := (&netserve.Client{Base: a}).Metrics()
		if err != nil {
			return nil, fmt.Errorf("load: metrics from %s: %w", a, err)
		}
		snaps = append(snaps, s)
	}
	sum := sumSnapshots(snaps)
	return &sum, nil
}

// BootedCluster is an in-process cluster for hermetic cluster
// benchmarks, the counterpart of Boot for -cluster runs.
type BootedCluster struct {
	Addrs []string
	local *cluster.Local
}

// BootCluster starts an n-node in-process cluster with the rate
// limiter opened wide (the generator is the only client; the
// interesting backpressure is the admission queue's).
func BootCluster(n int, opts BootOpts) (*BootedCluster, error) {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	l, err := cluster.BootLocal(cluster.BootConfig{
		Nodes:    n,
		Workers:  opts.Workers,
		QueueCap: opts.QueueCap,
		Rate:     1e9,
		Burst:    1e9,
		Logf:     opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &BootedCluster{Addrs: l.Addrs(), local: l}, nil
}

// Close tears every node down.
func (b *BootedCluster) Close() { b.local.Close() }
