// Cluster-mode load generation: omniload can drive a set of
// omniserved cluster members through the hash-routing failover client
// instead of a single node. The server-side delta then comes from
// summing every member's metrics snapshot before and after the run —
// cluster throughput is the fleet's, not one node's.
package load

import (
	"fmt"

	"omniware/internal/cluster"
	"omniware/internal/netserve"
	"omniware/internal/serve/metrics"
)

// client is the slice of netserve.Client the generator needs; the
// cluster-aware client satisfies it through clusterClient.
type client interface {
	Upload(blob []byte) (*netserve.UploadResponse, error)
	ExecRetry(r netserve.ExecRequest, pol netserve.RetryPolicy) (*netserve.ExecResponse, error)
}

// clusterClient adapts cluster.Client to the generator's interface.
type clusterClient struct {
	cl *cluster.Client
}

func (c clusterClient) Upload(blob []byte) (*netserve.UploadResponse, error) {
	return c.cl.Upload(blob)
}

func (c clusterClient) ExecRetry(r netserve.ExecRequest, pol netserve.RetryPolicy) (*netserve.ExecResponse, error) {
	return c.cl.ExecWithPolicy(r, pol)
}

// FleetMetrics snapshots every member and merges (counters sum,
// histogram buckets add, quantiles recomputed from merged buckets, the
// cluster sections fold peer-wise) — the fleet-wide view the
// cluster-mode server delta (and omnictl cluster metrics) uses. The
// bucket arithmetic lives in metrics.MergeSnapshots, the same fold the
// /v1/cluster/metrics fan-out uses, so the two views can never
// disagree.
func FleetMetrics(addrs []string) (*metrics.Snapshot, error) {
	var sum metrics.Snapshot
	for i, a := range addrs {
		s, err := (&netserve.Client{Base: a}).Metrics()
		if err != nil {
			return nil, fmt.Errorf("load: metrics from %s: %w", a, err)
		}
		if i == 0 {
			sum = *s
		} else {
			sum = metrics.MergeSnapshots(sum, *s)
		}
	}
	return &sum, nil
}

// BootedCluster is an in-process cluster for hermetic cluster
// benchmarks, the counterpart of Boot for -cluster runs.
type BootedCluster struct {
	Addrs []string
	local *cluster.Local
}

// BootCluster starts an n-node in-process cluster with the rate
// limiter opened wide (the generator is the only client; the
// interesting backpressure is the admission queue's).
func BootCluster(n int, opts BootOpts) (*BootedCluster, error) {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	l, err := cluster.BootLocal(cluster.BootConfig{
		Nodes:    n,
		Workers:  opts.Workers,
		QueueCap: opts.QueueCap,
		Rate:     1e9,
		Burst:    1e9,
		Audit:    opts.Audit,
		Logf:     opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &BootedCluster{Addrs: l.Addrs(), local: l}, nil
}

// Close tears every node down.
func (b *BootedCluster) Close() { b.local.Close() }
