package load

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"omniware/internal/bench"
	"omniware/internal/cc"
	"omniware/internal/cluster"
	"omniware/internal/core"
	"omniware/internal/netserve"
	"omniware/internal/serve/metrics"
	"omniware/internal/trace"
	"omniware/internal/wire"
)

// TrivLoad is the trivial-module workload: all serving overhead, no
// application work. In the mix it isolates the per-job fixed cost
// (address-space setup, cache lookup, simulator spin-up) that the
// zero-allocation hot path attacks.
const TrivLoad = "trivload"

const trivLoadSrc = `int main(void) { return 0; }`

// Mix is a weighted choice set: name -> weight. Weights need not sum
// to anything; only ratios matter.
type Mix map[string]float64

// Config describes one load run. Zero values select the defaults.
type Config struct {
	Addr string // base URL of the omniserved instance (required unless Addrs is set)

	// Addrs switches the generator into cluster mode: requests are
	// hash-routed across these members with failover, and the server
	// delta sums every member's metrics.
	Addrs []string

	Mode    string  // "closed" (default) or "open"
	Clients int     // closed-loop concurrency (default 8)
	Rate    float64 // open-loop arrivals per second (default 100)
	Jobs    int     // total requests; fixed count keeps seeded runs reproducible (default 100)
	Seed    int64   // schedule seed (default 1)

	Workloads Mix // default: trivload=4, each SPEC workload=1
	Targets   Mix // default: uniform over mips/sparc/ppc/x86
	Scale     int // SPEC workload SCALE override (default 1; <0 keeps built-in size)

	NoSFI      bool // run unsandboxed (default: SFI on, like production)
	DeadlineMs int  // per-request deadline (default 10000)
	Prewarm    bool // run one untimed job per distinct (workload, target) first
	Check      bool // interpreter parity check on every job (CI smoke)

	// Audit records the server's admission-gate mode in the report's
	// config section ("" when off). Informational: the gate itself is
	// a server-side setting (BootOpts.Audit for in-process boots).
	Audit string

	RetryMax   int           // retry budget per job on 429/503 (default 16)
	RetryDelay time.Duration // backoff cap (default 250ms; server hint honored below it)
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = "closed"
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Jobs <= 0 {
		c.Jobs = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workloads == nil {
		c.Workloads = Mix{TrivLoad: 4, "li": 1, "compress": 1, "alvinn": 1, "eqntott": 1}
	}
	if c.Targets == nil {
		c.Targets = Mix{"mips": 1, "sparc": 1, "ppc": 1, "x86": 1}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = 10000
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 16
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 250 * time.Millisecond
	}
	return c
}

// JobSpec is one scheduled request.
type JobSpec struct {
	Workload string
	Target   string
}

// picker draws weighted names deterministically. Names are sorted so
// the same seed always yields the same schedule regardless of map
// iteration order.
type picker struct {
	names []string
	cum   []float64
}

func newPicker(m Mix) (*picker, error) {
	p := &picker{}
	for n := range m {
		p.names = append(p.names, n)
	}
	sort.Strings(p.names)
	total := 0.0
	for _, n := range p.names {
		w := m[n]
		if w < 0 {
			return nil, fmt.Errorf("load: negative weight %g for %q", w, n)
		}
		total += w
		p.cum = append(p.cum, total)
	}
	if total <= 0 {
		return nil, fmt.Errorf("load: mix has no positive weight")
	}
	return p, nil
}

func (p *picker) pick(r *rand.Rand) string {
	x := r.Float64() * p.cum[len(p.cum)-1]
	for i, c := range p.cum {
		if x < c {
			return p.names[i]
		}
	}
	return p.names[len(p.names)-1]
}

// Schedule expands a config into its deterministic job sequence. The
// same (seed, jobs, mixes) always produce the same sequence — the
// property that makes before/after BENCH comparisons meaningful.
func Schedule(cfg Config) ([]JobSpec, error) {
	cfg = cfg.withDefaults()
	wp, err := newPicker(cfg.Workloads)
	if err != nil {
		return nil, fmt.Errorf("load: workloads: %w", err)
	}
	tp, err := newPicker(cfg.Targets)
	if err != nil {
		return nil, fmt.Errorf("load: targets: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := make([]JobSpec, cfg.Jobs)
	for i := range specs {
		specs[i] = JobSpec{Workload: wp.pick(rng), Target: tp.pick(rng)}
	}
	return specs, nil
}

// BuildWorkload compiles one workload to its OMW wire blob. TrivLoad
// is built from an inline source; everything else comes from the
// bench suite (li, compress, alvinn, eqntott).
func BuildWorkload(name string, scale int) ([]byte, error) {
	var files []core.SourceFile
	if name == TrivLoad {
		files = []core.SourceFile{{Name: "trivload.c", Src: trivLoadSrc}}
	} else {
		var err error
		files, err = bench.Sources(name, scale)
		if err != nil {
			return nil, err
		}
	}
	mod, err := core.BuildC(files, cc.Options{OptLevel: 2})
	if err != nil {
		return nil, fmt.Errorf("load: building %s: %w", name, err)
	}
	return wire.EncodeModule(mod)
}

// runStats accumulates outcomes across the generator's goroutines.
type runStats struct {
	ok, faults, errors    atomic.Uint64
	sheds                 atomic.Uint64
	warm, cold            atomic.Uint64
	checked, parityFails  atomic.Uint64
	lat, warmLat, coldLat trace.Histogram
}

// Run executes one load run against cfg.Addr and assembles the
// report: compile and upload the workload mix, snapshot /v1/metrics,
// optionally prewarm the translation cache, fire the schedule, and
// snapshot again.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" && len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("load: Config.Addr or Config.Addrs is required")
	}
	specs, err := Schedule(cfg)
	if err != nil {
		return nil, err
	}
	var cl client
	var snapshot func() (*metrics.Snapshot, error)
	var ccl *cluster.Client
	if len(cfg.Addrs) > 0 {
		ccl, err = cluster.NewClient(cluster.ClientConfig{Addrs: cfg.Addrs})
		if err != nil {
			return nil, err
		}
		cl = clusterClient{ccl}
		snapshot = func() (*metrics.Snapshot, error) { return FleetMetrics(cfg.Addrs) }
	} else {
		ncl := &netserve.Client{Base: cfg.Addr}
		cl = ncl
		snapshot = ncl.Metrics
	}

	// Snapshot before the uploads: admission (wire decode, the audit
	// gate) happens here, ahead of the serving interval the main
	// delta describes, so the audit section needs its own baseline.
	setup, err := snapshot()
	if err != nil {
		return nil, fmt.Errorf("load: metrics at setup: %w", err)
	}

	// Upload each workload the schedule actually uses.
	hashes := map[string]string{}
	for _, s := range specs {
		if _, ok := hashes[s.Workload]; ok {
			continue
		}
		blob, err := BuildWorkload(s.Workload, cfg.Scale)
		if err != nil {
			return nil, err
		}
		up, err := cl.Upload(blob)
		if err != nil {
			return nil, fmt.Errorf("load: uploading %s: %w", s.Workload, err)
		}
		hashes[s.Workload] = up.Hash
	}

	if cfg.Prewarm {
		seen := map[JobSpec]bool{}
		for _, s := range specs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if _, err := execOne(cl, cfg, hashes, s, nil); err != nil {
				return nil, fmt.Errorf("load: prewarm %s/%s: %w", s.Workload, s.Target, err)
			}
		}
	}

	before, err := snapshot()
	if err != nil {
		return nil, fmt.Errorf("load: metrics before: %w", err)
	}

	var st runStats
	start := time.Now()
	switch cfg.Mode {
	case "closed":
		runClosed(cl, cfg, hashes, specs, &st)
	case "open":
		runOpen(cl, cfg, hashes, specs, &st)
	default:
		return nil, fmt.Errorf("load: unknown mode %q (want open or closed)", cfg.Mode)
	}
	wall := time.Since(start)

	after, err := snapshot()
	if err != nil {
		return nil, fmt.Errorf("load: metrics after: %w", err)
	}

	r := &Report{
		Schema: Schema,
		Config: ConfigSummary{
			Mode:       cfg.Mode,
			Jobs:       cfg.Jobs,
			Seed:       cfg.Seed,
			Scale:      cfg.Scale,
			SFI:        !cfg.NoSFI,
			Prewarm:    cfg.Prewarm,
			DeadlineMs: cfg.DeadlineMs,
			Audit:      cfg.Audit,
			Workloads:  cfg.Workloads,
			Targets:    cfg.Targets,
		},
		Load: LoadStats{
			DurationSec: wall.Seconds(),
			JobsPerSec:  float64(len(specs)) / wall.Seconds(),
			Jobs:        uint64(len(specs)),
			OK:          st.ok.Load(),
			Faults:      st.faults.Load(),
			Errors:      st.errors.Load(),
			Sheds:       st.sheds.Load(),
			Warm:        st.warm.Load(),
			Cold:        st.cold.Load(),
			Checked:     st.checked.Load(),
			Parity:      st.parityFails.Load(),
			Latency:     latStats(st.lat.Snapshot()),
			WarmLatency: latStats(st.warmLat.Snapshot()),
			ColdLatency: latStats(st.coldLat.Snapshot()),
		},
		Server: Delta(*before, *after),
	}
	// The main server delta starts after the uploads and prewarm so
	// translations/stage quantiles describe the serving phase only —
	// but the admission audit runs at upload time, inside that
	// excluded window. Graft the audit section (counters and the
	// audit stage) from a whole-run delta instead.
	ad := Delta(*setup, *after)
	r.Server.AuditPass = ad.AuditPass
	r.Server.AuditWarns = ad.AuditWarns
	r.Server.AuditRejects = ad.AuditRejects
	if st, ok := ad.Stages["audit"]; ok {
		r.Server.Stages["audit"] = st
	}
	if cfg.Mode == "closed" {
		r.Config.Clients = cfg.Clients
	} else {
		r.Config.Rate = cfg.Rate
	}
	if ccl != nil {
		r.Config.Nodes = len(cfg.Addrs)
		r.Load.Failovers = ccl.Failovers()
	}
	return r, nil
}

// execOne issues one request with the run's retry policy. st == nil
// (prewarm) skips accounting.
func execOne(cl client, cfg Config, hashes map[string]string, s JobSpec, st *runStats) (*netserve.ExecResponse, error) {
	sfi := !cfg.NoSFI
	req := netserve.ExecRequest{
		Module:     hashes[s.Workload],
		Target:     s.Target,
		SFI:        &sfi,
		DeadlineMs: cfg.DeadlineMs,
		Check:      cfg.Check && st != nil,
	}
	pol := netserve.RetryPolicy{Max: cfg.RetryMax, MaxDelay: cfg.RetryDelay}
	if st != nil {
		pol.Sleep = func(d time.Duration) {
			st.sheds.Add(1)
			time.Sleep(d)
		}
	}
	t0 := time.Now()
	resp, err := cl.ExecRetry(req, pol)
	d := time.Since(t0)
	if st == nil {
		return resp, err
	}
	st.lat.Observe(d)
	if err != nil {
		st.errors.Add(1)
		return resp, err
	}
	switch resp.Status {
	case "ok":
		st.ok.Add(1)
	case "fault(contained)":
		st.faults.Add(1)
	default:
		st.errors.Add(1)
	}
	if resp.Cached {
		st.warm.Add(1)
		st.warmLat.Observe(d)
	} else {
		st.cold.Add(1)
		st.coldLat.Observe(d)
	}
	if resp.Parity != nil {
		st.checked.Add(1)
		if !*resp.Parity {
			st.parityFails.Add(1)
		}
	}
	return resp, nil
}

// runClosed keeps cfg.Clients requests in flight: each worker pulls
// the next schedule slot until the schedule is exhausted.
func runClosed(cl client, cfg Config, hashes map[string]string, specs []JobSpec, st *runStats) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(specs)) {
					return
				}
				_, _ = execOne(cl, cfg, hashes, specs[i], st)
			}
		}()
	}
	wg.Wait()
}

// runOpen fires requests at fixed arrival times regardless of
// completions — the arrival process the server cannot slow down, so
// queueing and shedding behaviour is actually exercised.
func runOpen(cl client, cfg Config, hashes map[string]string, specs []JobSpec, st *runStats) {
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	var wg sync.WaitGroup
	for i, s := range specs {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(s JobSpec) {
			defer wg.Done()
			_, _ = execOne(cl, cfg, hashes, s, st)
		}(s)
	}
	wg.Wait()
}
