// Package load is the load-generation and benchmark subsystem: it
// drives an omniserved instance over real HTTP with a deterministic,
// seeded schedule of execution requests — open-loop (fixed arrival
// rate) or closed-loop (N concurrent clients) — across a configurable
// mix of workloads and target machines, and distills the run into a
// schema-versioned Report (the BENCH_<n>.json artifacts the repo
// checks in to anchor performance claims).
//
// The report combines three vantage points: the client side (what the
// generator observed end to end, including sheds and retries), the
// server side (before/after deltas of the /v1/metrics counters and
// bucket-wise stage-histogram subtraction, so quantiles describe this
// run rather than the server's lifetime), and the allocator (paired
// testing.Benchmark runs of the host execute path, where the
// zero-allocation claim is enforced).
package load

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"omniware/internal/serve/metrics"
	"omniware/internal/trace"
)

// Schema identifies the report layout. Bump it when a field changes
// meaning; consumers (CI validation, the omnictl formatter) refuse
// versions they do not know. v3 added the admission-audit section
// (gate mode in the config, pass/warn/reject interval counters in
// the server delta).
const Schema = "omniload/v3"

// SchemaV2 and SchemaV1 are the previous layouts — strict subsets of
// v3 — still accepted by Validate so checked-in BENCH artifacts from
// earlier runs keep validating. v2 added the cluster peer-health
// section (per-peer quarantine attribution with reasons, fleet
// failover counts) to ServerDelta.
const (
	SchemaV2 = "omniload/v2"
	SchemaV1 = "omniload/v1"
)

// Report is one load run, serialized as BENCH_<n>.json.
type Report struct {
	Schema string        `json:"schema"`
	Config ConfigSummary `json:"config"`
	Load   LoadStats     `json:"load"`
	Server ServerDelta   `json:"server"`
	Allocs []AllocStat   `json:"allocs,omitempty"`
}

// ConfigSummary pins everything needed to reproduce the run.
type ConfigSummary struct {
	Mode       string             `json:"mode"` // open | closed
	Rate       float64            `json:"rate,omitempty"`
	Clients    int                `json:"clients,omitempty"`
	Nodes      int                `json:"nodes,omitempty"` // cluster members driven (0 = single node)
	Jobs       int                `json:"jobs"`
	Seed       int64              `json:"seed"`
	Scale      int                `json:"scale"`
	SFI        bool               `json:"sfi"`
	Prewarm    bool               `json:"prewarm"`
	DeadlineMs int                `json:"deadline_ms,omitempty"`
	Audit      string             `json:"audit,omitempty"` // admission-gate mode ("" = off)
	Workloads  map[string]float64 `json:"workloads"`
	Targets    map[string]float64 `json:"targets"`
}

// LatencyStats summarizes one latency distribution in microseconds.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MeanUs float64 `json:"mean_us"`
}

func latStats(s trace.HistSnapshot) LatencyStats {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return LatencyStats{
		Count:  s.Count,
		P50Us:  us(s.P50()),
		P95Us:  us(s.P95()),
		P99Us:  us(s.P99()),
		MeanUs: us(s.Mean()),
	}
}

// LoadStats is the client-side view: what the generator observed over
// the wire, including backpressure the server-side counters cannot
// see (sheds never become jobs).
type LoadStats struct {
	DurationSec float64 `json:"duration_sec"`
	JobsPerSec  float64 `json:"jobs_per_sec"`

	Jobs    uint64 `json:"jobs"`   // scheduled requests completed (one way or another)
	OK      uint64 `json:"ok"`     // module exited cleanly
	Faults  uint64 `json:"faults"` // contained module faults
	Errors  uint64 `json:"errors"` // job-level errors (budget, deadline, refusals that out-ran the retry budget)
	Sheds   uint64 `json:"sheds"`  // 429/503 responses absorbed by retries
	Warm    uint64 `json:"warm"`   // translation served from cache
	Cold    uint64 `json:"cold"`   // translation paid on the spot
	Checked uint64 `json:"checked,omitempty"`
	Parity  uint64 `json:"parity_failures"` // interpreter disagreements (must be 0)

	// Failovers counts cluster-mode node abandonments (dead or
	// persistently shedding members skipped by the routing client).
	Failovers uint64 `json:"failovers,omitempty"`

	Latency     LatencyStats `json:"latency"`      // end-to-end client wall clock
	WarmLatency LatencyStats `json:"warm_latency"` // latency of cache-hit jobs
	ColdLatency LatencyStats `json:"cold_latency"` // latency of cache-miss jobs
}

// StageDelta is the interval view of one server pipeline stage:
// quantiles over only the observations between the two snapshots.
type StageDelta struct {
	Count  uint64  `json:"count"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MeanUs float64 `json:"mean_us"`
}

// ServerDelta is the server-side view of the run: /v1/metrics sampled
// before and after, counters subtracted, stage histograms subtracted
// bucket-wise so the quantiles are the run's own.
type ServerDelta struct {
	JobsSubmitted   uint64 `json:"jobs_submitted"`
	JobsRun         uint64 `json:"jobs_run"`
	JobsFailed      uint64 `json:"jobs_failed"`
	FaultsContained uint64 `json:"faults_contained"`
	Timeouts        uint64 `json:"timeouts"`
	Translations    uint64 `json:"translations"`
	SimInsts        uint64 `json:"sim_insts"`
	SimCycles       uint64 `json:"sim_cycles"`

	CacheHits      uint64  `json:"cache_hits"`
	CacheCoalesced uint64  `json:"cache_coalesced"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheDiskHits  uint64  `json:"cache_disk_hits"`
	HitRate        float64 `json:"hit_rate"`

	// Cluster-mode extras: translations served by peer fill and peer
	// candidates refused by the local verifier, summed over members.
	CachePeerHits        uint64 `json:"cache_peer_hits,omitempty"`
	CachePeerQuarantines uint64 `json:"cache_peer_quarantines,omitempty"`

	// ClusterFailovers counts server-side peer abandonments during the
	// run (peer fetches that faulted and fell through to the next
	// owner), summed over members. Distinct from Load.Failovers, which
	// is the routing client's own abandonment count.
	ClusterFailovers uint64 `json:"cluster_failovers,omitempty"`
	// PeerHealth is the per-peer interval attribution, merged over
	// members: how each peer behaved as a translation source during
	// the run, with quarantines split by refusal reason.
	PeerHealth []PeerDelta `json:"peer_health,omitempty"`

	// Admission-audit interval counters (v3), summed over members:
	// how the static-analysis gate ruled on the run's uploads, with
	// warn/reject splits by reason. All zero when the gate is off.
	AuditPass    uint64            `json:"audit_pass,omitempty"`
	AuditWarns   map[string]uint64 `json:"audit_warns,omitempty"`
	AuditRejects map[string]uint64 `json:"audit_rejects,omitempty"`

	AppInsts     uint64  `json:"app_insts"`
	SandboxInsts uint64  `json:"sandbox_insts"`
	SchedInsts   uint64  `json:"sched_insts"`
	SandboxPct   float64 `json:"sandbox_pct"`

	Stages map[string]StageDelta `json:"stages"`
}

// PeerDelta is one peer's interval attribution in a cluster run.
type PeerDelta struct {
	Peer                string            `json:"peer"`
	Hits                uint64            `json:"hits"`
	Quarantines         uint64            `json:"quarantines"`
	QuarantinesByReason map[string]uint64 `json:"quarantines_by_reason,omitempty"`
	Errors              uint64            `json:"errors"`
	Pushes              uint64            `json:"pushes"`
}

// AllocStat is one testing.Benchmark measurement of a host-lifecycle
// execute path. The pooled variant's AllocsPerOp is the number the
// zero-allocation acceptance gate reads.
type AllocStat struct {
	Name        string `json:"name"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	NsPerOp     int64  `json:"ns_per_op"`
}

// Delta computes the server-side interval between two metric
// snapshots taken around a load run. Counters are monotonic, so plain
// subtraction is the interval; histogram quantiles come from
// bucket-wise subtraction (trace.HistSnapshot.Sub).
func Delta(before, after metrics.Snapshot) ServerDelta {
	sub := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return 0
	}
	d := ServerDelta{
		JobsSubmitted:   sub(after.JobsSubmitted, before.JobsSubmitted),
		JobsRun:         sub(after.JobsRun, before.JobsRun),
		JobsFailed:      sub(after.JobsFailed, before.JobsFailed),
		FaultsContained: sub(after.FaultsContained, before.FaultsContained),
		Timeouts:        sub(after.Timeouts, before.Timeouts),
		Translations:    sub(after.Translations, before.Translations),
		SimInsts:        sub(after.SimInsts, before.SimInsts),
		SimCycles:       sub(after.SimCycles, before.SimCycles),
		CacheHits:       sub(after.CacheHits, before.CacheHits),
		CacheCoalesced:  sub(after.CacheCoalesced, before.CacheCoalesced),
		CacheMisses:     sub(after.CacheMisses, before.CacheMisses),
		CacheDiskHits:   sub(after.CacheDiskHits, before.CacheDiskHits),
		Stages:          map[string]StageDelta{},

		CachePeerHits:        sub(after.CachePeerHits, before.CachePeerHits),
		CachePeerQuarantines: sub(after.CachePeerQuarantines, before.CachePeerQuarantines),

		AuditPass: sub(after.AuditPass, before.AuditPass),
	}
	for reason, v := range after.AuditWarns {
		if dv := sub(v, before.AuditWarns[reason]); dv > 0 {
			if d.AuditWarns == nil {
				d.AuditWarns = map[string]uint64{}
			}
			d.AuditWarns[reason] = dv
		}
	}
	for reason, v := range after.AuditRejects {
		if dv := sub(v, before.AuditRejects[reason]); dv > 0 {
			if d.AuditRejects == nil {
				d.AuditRejects = map[string]uint64{}
			}
			d.AuditRejects[reason] = dv
		}
	}
	warm := d.CacheHits + d.CacheCoalesced + d.CacheDiskHits + d.CachePeerHits
	if total := warm + d.CacheMisses; total > 0 {
		d.HitRate = float64(warm) / float64(total)
	}
	prevTargets := map[string]metrics.TargetSnapshot{}
	for _, ts := range before.Targets {
		prevTargets[ts.Target] = ts
	}
	for _, ts := range after.Targets {
		p := prevTargets[ts.Target]
		d.AppInsts += sub(ts.AppInsts, p.AppInsts)
		d.SandboxInsts += sub(ts.Sandbox, p.Sandbox)
		d.SchedInsts += sub(ts.Sched, p.Sched)
	}
	if total := d.AppInsts + d.SandboxInsts + d.SchedInsts; total > 0 {
		d.SandboxPct = 100 * float64(d.SandboxInsts) / float64(total)
	}
	for name, st := range after.Stages {
		h := st.Hist.Sub(before.Stages[name].Hist)
		if h.Count == 0 {
			continue
		}
		ls := latStats(h)
		d.Stages[name] = StageDelta{
			Count: ls.Count, P50Us: ls.P50Us, P95Us: ls.P95Us, P99Us: ls.P99Us, MeanUs: ls.MeanUs,
		}
	}
	if after.Cluster != nil {
		var beforeC metrics.ClusterSnapshot
		if before.Cluster != nil {
			beforeC = *before.Cluster
		}
		d.ClusterFailovers = sub(after.Cluster.Failovers, beforeC.Failovers)
		prevPeers := map[string]metrics.PeerStats{}
		for _, p := range beforeC.Peers {
			prevPeers[p.Peer] = p
		}
		for _, p := range after.Cluster.Peers {
			q := prevPeers[p.Peer]
			pd := PeerDelta{
				Peer:        p.Peer,
				Hits:        sub(p.Hits, q.Hits),
				Quarantines: sub(p.Quarantines, q.Quarantines),
				Errors:      sub(p.Errors, q.Errors),
				Pushes:      sub(p.Pushes, q.Pushes),
			}
			for reason, v := range p.QuarantinesByReason {
				if dv := sub(v, q.QuarantinesByReason[reason]); dv > 0 {
					if pd.QuarantinesByReason == nil {
						pd.QuarantinesByReason = map[string]uint64{}
					}
					pd.QuarantinesByReason[reason] = dv
				}
			}
			d.PeerHealth = append(d.PeerHealth, pd)
		}
		sort.Slice(d.PeerHealth, func(i, j int) bool { return d.PeerHealth[i].Peer < d.PeerHealth[j].Peer })
	}
	return d
}

// Validate checks a report's internal consistency — the CI gate runs
// it against freshly emitted and checked-in BENCH files. It verifies
// the schema version, the client-side accounting identity, quantile
// monotonicity, and cross-view agreement loose enough to tolerate
// concurrent background traffic but tight enough to catch a report
// assembled from mismatched snapshots.
func Validate(r *Report) error {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }
	if r.Schema != Schema && r.Schema != SchemaV2 && r.Schema != SchemaV1 {
		bad("schema %q, want %q (or legacy %q, %q)", r.Schema, Schema, SchemaV2, SchemaV1)
	}
	if r.Load.Jobs == 0 {
		bad("no jobs recorded")
	}
	if got := r.Load.OK + r.Load.Faults + r.Load.Errors; got != r.Load.Jobs {
		bad("ok+faults+errors = %d, want jobs = %d", got, r.Load.Jobs)
	}
	if got := r.Load.Warm + r.Load.Cold; got > r.Load.Jobs {
		bad("warm+cold = %d exceeds jobs = %d", got, r.Load.Jobs)
	}
	if r.Load.Parity > r.Load.Checked {
		bad("parity failures %d exceed checked %d", r.Load.Parity, r.Load.Checked)
	}
	if r.Load.DurationSec <= 0 {
		bad("non-positive duration %v", r.Load.DurationSec)
	}
	if r.Load.JobsPerSec <= 0 && r.Load.Jobs > 0 {
		bad("non-positive jobs/sec with %d jobs", r.Load.Jobs)
	}
	mono := func(name string, p50, p95, p99 float64) {
		if p50 < 0 || p50 > p95 || p95 > p99 {
			bad("%s quantiles not monotone: p50=%.1f p95=%.1f p99=%.1f", name, p50, p95, p99)
		}
	}
	mono("latency", r.Load.Latency.P50Us, r.Load.Latency.P95Us, r.Load.Latency.P99Us)
	for name, st := range r.Server.Stages {
		mono("stage "+name, st.P50Us, st.P95Us, st.P99Us)
	}
	if r.Server.SandboxPct < 0 || r.Server.SandboxPct > 100 {
		bad("sandbox_pct %.2f outside [0,100]", r.Server.SandboxPct)
	}
	if r.Config.Jobs > 0 && uint64(r.Config.Jobs) != r.Load.Jobs {
		bad("config jobs %d != load jobs %d", r.Config.Jobs, r.Load.Jobs)
	}
	for _, a := range r.Allocs {
		if a.AllocsPerOp < 0 || a.Name == "" {
			bad("malformed alloc stat %+v", a)
		}
	}
	seenPeer := map[string]bool{}
	for _, p := range r.Server.PeerHealth {
		if p.Peer == "" {
			bad("peer_health entry with empty peer address")
		}
		if seenPeer[p.Peer] {
			bad("peer_health lists %s twice", p.Peer)
		}
		seenPeer[p.Peer] = true
		var byReason uint64
		for _, v := range p.QuarantinesByReason {
			byReason += v
		}
		if byReason > p.Quarantines {
			bad("peer %s reason-split quarantines %d exceed total %d", p.Peer, byReason, p.Quarantines)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("load: invalid report: %s", strings.Join(errs, "; "))
	}
	return nil
}

// Format renders a report for humans: the summary line omnictl and
// omniload both print.
func Format(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "omniload %s  mode=%s jobs=%d seed=%d\n",
		r.Schema, r.Config.Mode, r.Load.Jobs, r.Config.Seed)
	fmt.Fprintf(&b, "  throughput   %.1f jobs/sec over %.2fs\n", r.Load.JobsPerSec, r.Load.DurationSec)
	fmt.Fprintf(&b, "  outcomes     ok=%d faults=%d errors=%d sheds=%d parity_failures=%d\n",
		r.Load.OK, r.Load.Faults, r.Load.Errors, r.Load.Sheds, r.Load.Parity)
	fmt.Fprintf(&b, "  cache        warm=%d cold=%d hit_rate=%.2f\n",
		r.Load.Warm, r.Load.Cold, r.Server.HitRate)
	if r.Config.Nodes > 0 {
		fmt.Fprintf(&b, "  cluster      nodes=%d peer_hits=%d peer_quarantines=%d failovers=%d cluster_failovers=%d\n",
			r.Config.Nodes, r.Server.CachePeerHits, r.Server.CachePeerQuarantines,
			r.Load.Failovers, r.Server.ClusterFailovers)
		for _, p := range r.Server.PeerHealth {
			line := fmt.Sprintf("  peer         %s hits=%d quarantines=%d errors=%d pushes=%d",
				p.Peer, p.Hits, p.Quarantines, p.Errors, p.Pushes)
			for _, reason := range sortedKeys(p.QuarantinesByReason) {
				line += fmt.Sprintf(" %s=%d", reason, p.QuarantinesByReason[reason])
			}
			b.WriteString(line + "\n")
		}
	}
	fmt.Fprintf(&b, "  latency      p50=%.0fus p95=%.0fus p99=%.0fus\n",
		r.Load.Latency.P50Us, r.Load.Latency.P95Us, r.Load.Latency.P99Us)
	if r.Load.Warm > 0 {
		fmt.Fprintf(&b, "  warm latency p50=%.0fus p95=%.0fus p99=%.0fus\n",
			r.Load.WarmLatency.P50Us, r.Load.WarmLatency.P95Us, r.Load.WarmLatency.P99Us)
	}
	fmt.Fprintf(&b, "  sandbox      %.2f%% of %d insts\n", r.Server.SandboxPct,
		r.Server.AppInsts+r.Server.SandboxInsts+r.Server.SchedInsts)
	if r.Config.Audit != "" {
		line := fmt.Sprintf("  audit        mode=%s pass=%d", r.Config.Audit, r.Server.AuditPass)
		for _, reason := range sortedKeys(r.Server.AuditWarns) {
			line += fmt.Sprintf(" warn_%s=%d", reason, r.Server.AuditWarns[reason])
		}
		for _, reason := range sortedKeys(r.Server.AuditRejects) {
			line += fmt.Sprintf(" reject_%s=%d", reason, r.Server.AuditRejects[reason])
		}
		b.WriteString(line + "\n")
	}
	b.WriteString(FormatServer(r.Server))
	for _, a := range r.Allocs {
		fmt.Fprintf(&b, "  allocs       %-22s %d allocs/op  %d B/op  %d ns/op\n",
			a.Name, a.AllocsPerOp, a.BytesPerOp, a.NsPerOp)
	}
	return b.String()
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FormatServer renders just the server-side interval — shared by the
// full report formatter and omnictl bench (which has only the delta).
func FormatServer(d ServerDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  server       run=%d failed=%d contained=%d timeouts=%d translations=%d\n",
		d.JobsRun, d.JobsFailed, d.FaultsContained, d.Timeouts, d.Translations)
	var ordered []string
	seen := map[string]bool{}
	for _, n := range metrics.StageNames {
		if _, ok := d.Stages[n]; ok {
			ordered = append(ordered, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range d.Stages {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	ordered = append(ordered, extra...)
	for _, n := range ordered {
		st := d.Stages[n]
		fmt.Fprintf(&b, "  stage %-12s count=%d p50=%.0fus p95=%.0fus p99=%.0fus\n",
			n, st.Count, st.P50Us, st.P95Us, st.P99Us)
	}
	return b.String()
}
