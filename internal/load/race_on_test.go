//go:build race

package load_test

// raceEnabled relaxes the allocation assertions: the race detector
// changes the allocation profile and sync.Pool intentionally drops
// items under it.
const raceEnabled = true
