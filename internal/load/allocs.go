package load

import (
	"fmt"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// MeasureAllocs runs the host-lifecycle allocation benchmarks
// in-process (testing.Benchmark, no test binary involved) and returns
// one stat per path. The measured unit is the serving layer's
// warm-cache execute path: the translation is already cached, so one
// op is exactly "stand up a sandboxed address space, run the program,
// tear it down" — the per-job cost the report's allocs section exists
// to pin down.
func MeasureAllocs() ([]AllocStat, error) {
	mod, err := core.BuildC([]core.SourceFile{{Name: "trivload.c", Src: trivLoadSrc}}, cc.Options{OptLevel: 2})
	if err != nil {
		return nil, fmt.Errorf("load: allocs build: %w", err)
	}
	mach := target.ByName("mips")
	h0, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		return nil, err
	}
	prog, err := h0.Translate(mach, translate.Paper(true))
	if err != nil {
		return nil, err
	}

	var stats []AllocStat
	var benchErr error
	add := func(name string, fn func() error) {
		if benchErr != nil {
			return
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					benchErr = fmt.Errorf("load: bench %s: %w", name, err)
					return
				}
			}
		})
		if benchErr != nil {
			return
		}
		stats = append(stats, AllocStat{
			Name:        name,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			NsPerOp:     res.NsPerOp(),
		})
	}

	// The baseline: every job pays a fresh address space, layout, env
	// and simulator.
	add("exec_fresh_host", func() error {
		h, err := core.NewHost(mod, core.RunConfig{})
		if err != nil {
			return err
		}
		res, err := h.RunProgram(mach, prog)
		if err != nil {
			return err
		}
		if res.ExitCode != 0 {
			return fmt.Errorf("exit %d", res.ExitCode)
		}
		return nil
	})

	// The serving path: a pooled address space, scrubbed and reloaded
	// per op. The acceptance bar is zero allocations per op.
	add("exec_pooled_host", func() error {
		h, err := core.AcquireHost(mod, core.RunConfig{})
		if err != nil {
			return err
		}
		res, err := h.RunProgram(mach, prog)
		h.Release()
		if err != nil {
			return err
		}
		if res.ExitCode != 0 {
			return fmt.Errorf("exit %d", res.ExitCode)
		}
		return nil
	})

	return stats, benchErr
}
