package sfi_test

import (
	"strings"
	"testing"

	"omniware/internal/sfi"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// This file is the regression baseline for sfi.Verify's individual
// proof rules: each case is one store or indirect-branch idiom, run on
// every machine it applies to, with the expected verdict pinned. The
// differential fuzzer hunts for disagreements between implementations;
// these tables pin what the rules themselves are supposed to say.

// rulesSegInfo is a fixed synthetic segment: base 0x20000000, 16 MiB
// (mask 0xffffff), gp at base+0x8000.
func rulesSegInfo() translate.SegInfo {
	return translate.SegInfo{
		DataBase: 0x20000000,
		DataMask: 0x00ffffff,
		GPValue:  0x20008000,
	}
}

// buildRuleProg wraps seq in a canonical stub for m (dedicated
// registers loaded with their pinned values, then a jump over a trap
// padding) so the flag-establishing prefix every rule depends on is in
// place.
func buildRuleProg(m *target.Machine, si translate.SegInfo, seq []target.Inst) *target.Program {
	no := target.NoReg
	var code []target.Inst
	load := func(rd target.Reg, val uint32) {
		if rd == no {
			return
		}
		if m.Arch == target.X86 {
			code = append(code, target.Inst{Op: target.MovI, Rd: rd, Rs1: no, Rs2: no, Imm: int32(val)})
			return
		}
		code = append(code, target.Inst{Op: target.Lui, Rd: rd, Rs1: no, Rs2: no, Imm: int32(val >> 16)})
		if lo := val & 0xffff; lo != 0 {
			code = append(code, target.Inst{Op: target.OrI, Rd: rd, Rs1: rd, Rs2: no, Imm: int32(lo)})
		}
	}
	const nOmni = 2
	load(m.SFIMask, si.DataMask)
	load(m.SFIBase, si.DataBase)
	load(m.CodeMask, nOmni-1)
	load(m.GP, si.GPValue)
	j := len(code)
	code = append(code, target.Inst{Op: target.J, Rd: no, Rs1: no, Rs2: no})
	if m.HasDelaySlot {
		code = append(code, target.Inst{Op: target.Nop, Rd: no, Rs1: no, Rs2: no})
	}
	entry := int32(len(code))
	code[j].Target = entry
	code = append(code, seq...)
	code = append(code, target.Inst{Op: target.Halt, Rd: no, Rs1: no, Rs2: no})
	trap := int32(len(code))
	code = append(code, target.Inst{Op: target.Break, Rd: no, Rs1: no, Rs2: no})
	return &target.Program{
		Arch:         m.Arch,
		Code:         code,
		Entry:        0,
		OmniToNative: []int32{trap, trap},
	}
}

// ruleCase builds its sequence from the machine so register names
// resolve per target.
type ruleCase struct {
	name string
	arch func(m *target.Machine) bool // nil = all machines
	seq  func(m *target.Machine, si translate.SegInfo) []target.Inst
	ok   bool
	why  string // substring required in the violation when !ok
}

func nonX86(m *target.Machine) bool { return m.Arch != target.X86 }
func x86(m *target.Machine) bool    { return m.Arch == target.X86 }

func ruleCases() []ruleCase {
	no := target.NoReg
	const g = 4096
	mask := func(m *target.Machine) target.Inst {
		if m.Arch == target.X86 {
			return target.Inst{Op: target.AndI, Rd: m.SFIAddr, Rs1: m.OmniInt[2], Rs2: no, Imm: 0x00ffffff}
		}
		return target.Inst{Op: target.And, Rd: m.SFIAddr, Rs1: m.OmniInt[2], Rs2: m.SFIMask}
	}
	rebase := func(m *target.Machine) target.Inst {
		if m.Arch == target.X86 {
			return target.Inst{Op: target.OrI, Rd: m.SFIAddr, Rs1: m.SFIAddr, Rs2: no, Imm: 0x20000000}
		}
		return target.Inst{Op: target.Or, Rd: m.SFIAddr, Rs1: m.SFIAddr, Rs2: m.SFIBase}
	}
	fold := func(m *target.Machine, imm int32) target.Inst {
		return target.Inst{Op: target.AddI, Rd: m.SFIAddr, Rs1: m.SFIAddr, Rs2: no, Imm: imm}
	}
	sw := func(base target.Reg, imm int32) target.Inst {
		return target.Inst{Op: target.Sw, Rd: 2, Rs1: base, Rs2: no, Imm: imm}
	}
	seq := func(ins ...func(m *target.Machine, si translate.SegInfo) target.Inst) func(*target.Machine, translate.SegInfo) []target.Inst {
		return func(m *target.Machine, si translate.SegInfo) []target.Inst {
			out := make([]target.Inst, len(ins))
			for i, f := range ins {
				out[i] = f(m, si)
			}
			return out
		}
	}
	lift := func(in func(m *target.Machine) target.Inst) func(*target.Machine, translate.SegInfo) target.Inst {
		return func(m *target.Machine, _ translate.SegInfo) target.Inst { return in(m) }
	}
	return []ruleCase{
		// --- sp-relative guard-zone rule ---
		{name: "sp/guard-pos", ok: true,
			seq: seq(func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.OmniInt[14], g) })},
		{name: "sp/guard-neg", ok: true,
			seq: seq(func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.OmniInt[14], -g) })},
		{name: "sp/over-guard", ok: false, why: "store",
			seq: seq(func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.OmniInt[14], g+4) })},

		// --- absolute in-segment rule (no base register) ---
		{name: "abs/in-segment", ok: true,
			seq: seq(func(_ *target.Machine, si translate.SegInfo) target.Inst {
				return target.Inst{Op: target.Sw, Rd: 2, Rs1: no, Rs2: no, Imm: int32(si.DataBase + 0x100)}
			})},
		{name: "abs/outside", ok: false, why: "store",
			seq: seq(func(_ *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.Sw, Rd: 2, Rs1: no, Rs2: no, Imm: 0x1000}
			})},

		// --- masked-register store rule ---
		{name: "masked/based", ok: true, seq: seq(lift(mask), lift(rebase),
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.SFIAddr, 0) })},
		{name: "masked/based-guard-disp", ok: true, seq: seq(lift(mask), lift(rebase),
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.SFIAddr, g) })},
		{name: "masked/based-over-disp", ok: false, why: "store", seq: seq(lift(mask), lift(rebase),
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.SFIAddr, g+4) })},
		{name: "masked/unbased", ok: false, why: "store", seq: seq(lift(mask),
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.SFIAddr, 0) })},
		{name: "masked/fold-then-store", ok: true, seq: seq(lift(mask), lift(rebase),
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return fold(m, -g) },
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.SFIAddr, 0) })},
		{name: "masked/fold-stacking", ok: false, why: "store", seq: seq(lift(mask), lift(rebase),
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return fold(m, g) },
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.SFIAddr, g) })},
		{name: "masked/double-fold", ok: false, why: "store", seq: seq(lift(mask), lift(rebase),
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return fold(m, g) },
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return fold(m, g) },
			func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.SFIAddr, 0) })},
		{name: "masked/indexed", ok: true, arch: nonX86, seq: seq(lift(mask),
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.Sw, Rd: 2, Rs1: m.SFIBase, Rs2: m.SFIAddr, Indexed: true}
			})},
		{name: "masked/indexed-unmasked", ok: false, why: "store", arch: nonX86, seq: seq(
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.Sw, Rd: 2, Rs1: m.SFIBase, Rs2: m.SFIAddr, Indexed: true}
			})},

		// --- gp-relative rule ---
		{name: "gp/small-disp", ok: true, arch: nonX86,
			seq: seq(func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.GP, 0x100) })},
		// gp sits at base+0x8000; -0x9000 lands exactly on the window
		// edge (base minus one guard zone) and is still contained.
		{name: "gp/window-edge", ok: true, arch: nonX86,
			seq: seq(func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.GP, -0x9000) })},
		{name: "gp/outside-window", ok: false, why: "store", arch: nonX86,
			seq: seq(func(m *target.Machine, _ translate.SegInfo) target.Inst { return sw(m.GP, -0x9004) })},

		// --- indirect-branch rules ---
		{name: "jr/code-masked", ok: true, seq: func(m *target.Machine, si translate.SegInfo) []target.Inst {
			cm := target.Inst{Op: target.And, Rd: m.SFIAddr, Rs1: m.OmniInt[2], Rs2: m.CodeMask}
			if m.Arch == target.X86 {
				cm = target.Inst{Op: target.AndI, Rd: m.SFIAddr, Rs1: m.OmniInt[2], Rs2: no, Imm: 1}
			}
			return []target.Inst{cm, {Op: target.Jr, Rd: no, Rs1: m.SFIAddr, Rs2: no}}
		}},
		{name: "jr/unmasked", ok: false, why: "indirect", seq: seq(
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.Jr, Rd: no, Rs1: m.OmniInt[2], Rs2: no}
			})},
		{name: "jr/known-const", ok: true, seq: seq(
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.MovI, Rd: m.OmniInt[2], Rs1: no, Rs2: no, Imm: 1}
			},
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.Jr, Rd: no, Rs1: m.OmniInt[2], Rs2: no}
			})},
		{name: "jr/const-out-of-map", ok: false, why: "indirect", seq: seq(
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.MovI, Rd: m.OmniInt[2], Rs1: no, Rs2: no, Imm: 99}
			},
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.Jr, Rd: no, Rs1: m.OmniInt[2], Rs2: no}
			})},
		{name: "jr/x86-over-wide-mask", ok: false, why: "indirect", arch: x86, seq: seq(
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.AndI, Rd: m.SFIAddr, Rs1: m.OmniInt[2], Rs2: no, Imm: 7}
			},
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.Jr, Rd: no, Rs1: m.SFIAddr, Rs2: no}
			})},

		// --- reserved-register write protection ---
		{name: "reserved/clobber-mask", ok: false, why: "reserved", arch: nonX86, seq: seq(
			func(m *target.Machine, _ translate.SegInfo) target.Inst {
				return target.Inst{Op: target.MovI, Rd: m.SFIMask, Rs1: no, Rs2: no, Imm: -1}
			})},
		{name: "reserved/rewrite-exact", ok: true, arch: nonX86, seq: func(m *target.Machine, si translate.SegInfo) []target.Inst {
			// Re-loading the pinned value through the constant idiom is
			// allowed (it is what the stub itself does).
			return []target.Inst{
				{Op: target.Lui, Rd: m.SFIBase, Rs1: no, Rs2: no, Imm: int32(si.DataBase >> 16)},
			}
		}},

		// --- cross-block reset: sandbox facts must not cross a leader ---
		{name: "leader/reset", ok: false, why: "store", seq: func(m *target.Machine, si translate.SegInfo) []target.Inst {
			// mask; rebase; beqz over the store; store is a branch
			// TARGET, so the facts are gone when it is reached linearly.
			no := target.NoReg
			out := []target.Inst{
				mask(m), rebase(m),
				{Op: target.Beqz, Rd: no, Rs1: m.OmniInt[2], Rs2: no}, // patched below
			}
			if m.HasDelaySlot {
				out = append(out, target.Inst{Op: target.Nop, Rd: no, Rs1: no, Rs2: no})
			}
			st := sw(m.SFIAddr, 0)
			out = append(out, st)
			// The branch targets the store itself.
			out[2].Target = int32(len(out) - 1)
			return out
		}},
	}
}

// TestVerifyProofRules is the rule-by-rule baseline on all four
// machines. Branch targets inside case sequences are relative to the
// sequence and patched to absolute indices by the builder offset.
func TestVerifyProofRules(t *testing.T) {
	si := rulesSegInfo()
	for _, tc := range ruleCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, m := range target.Machines() {
				if tc.arch != nil && !tc.arch(m) {
					continue
				}
				seq := tc.seq(m, si)
				// Rebase intra-sequence branch targets onto the final
				// program (the stub shifts everything).
				prog := buildRuleProg(m, si, nil)
				off := int32(len(prog.Code)) - 2 // before halt+trap
				for i := range seq {
					if seq[i].Op.IsBranch() || seq[i].Op == target.J {
						seq[i].Target += off
					}
				}
				prog = buildRuleProg(m, si, seq)
				p := sfi.PolicyFor(m, si)
				vs := sfi.Verify(prog, p)
				if tc.ok && len(vs) != 0 {
					t.Errorf("%s: expected accept, got %v", m.Name, vs)
				}
				if !tc.ok {
					if len(vs) == 0 {
						t.Errorf("%s: expected reject, program verified", m.Name)
					} else if tc.why != "" {
						found := false
						for _, v := range vs {
							if strings.Contains(strings.ToLower(v.Kind.String()+" "+v.Why), tc.why) {
								found = true
							}
						}
						if !found {
							t.Errorf("%s: no violation mentioning %q in %v", m.Name, tc.why, vs)
						}
					}
				}
			}
		})
	}
}

// TestCheckMessageFormat pins the per-kind totals in sfi.Check's error.
func TestCheckMessageFormat(t *testing.T) {
	m := target.Machines()[0]
	si := rulesSegInfo()
	no := target.NoReg
	seq := []target.Inst{
		{Op: target.Sw, Rd: 2, Rs1: m.OmniInt[2], Rs2: no, Imm: 0},
		{Op: target.Sw, Rd: 2, Rs1: m.OmniInt[2], Rs2: no, Imm: 4},
		{Op: target.Sw, Rd: 2, Rs1: m.OmniInt[2], Rs2: no, Imm: 8},
		{Op: target.Sw, Rd: 2, Rs1: m.OmniInt[2], Rs2: no, Imm: 12},
		{Op: target.Jr, Rd: no, Rs1: m.OmniInt[2], Rs2: no},
		{Op: target.MovI, Rd: m.SFIMask, Rs1: no, Rs2: no, Imm: 7},
	}
	err := sfi.Check(buildRuleProg(m, si, seq), m, si)
	if err == nil {
		t.Fatal("six-violation program passed")
	}
	msg := err.Error()
	for _, want := range []string{"6 violation(s)", "4 store", "1 indirect", "1 reserved-register", "..."} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// Only the first three violations are spelled out.
	if n := strings.Count(msg, "inst "); n != 3 {
		t.Errorf("error should detail exactly 3 violations, found %d: %q", n, msg)
	}
}
