package sfi_test

import (
	"strings"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/sfi"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// Adversarial verifier testing: take genuine translator output (which
// must verify cleanly), seed one targeted violation of each class an
// attacker — or a translator bug — could introduce, and require the
// verifier to report it. This is the contract that lets the translator
// stay outside the trusted computing base: anything it gets wrong in
// these directions is caught at load time.

// mutationProgram has sandboxed global stores, an indirect call
// through a function pointer, and returns — one site for every
// mutation class on every machine.
const mutationProgram = `
int g[256];
int add2(int x) { return x + 2; }
int (*fp)(int) = add2;
int main(void) {
	int i;
	for (i = 0; i < 256; i++) g[i] = fp(i);
	return g[200];
}`

// A mutator edits prog in place and returns the index it mutated, or
// -1 when it found no applicable site (a test failure: the program
// above is built to contain every site on every machine).
type mutator struct {
	name string
	why  string // substring the seeded violation must report
	edit func(prog *target.Program, m *target.Machine, p sfi.Policy) int
}

var mutators = []mutator{
	{
		// Remove the masking instruction ahead of a sandboxed store:
		// the store then goes through an unproven register value.
		name: "drop-sandbox-mask",
		why:  "store not provably inside the data segment",
		edit: func(prog *target.Program, m *target.Machine, p sfi.Policy) int {
			for i := range prog.Code {
				in := &prog.Code[i]
				if in.Cat != target.CatSFI || in.Rd != m.SFIAddr {
					continue
				}
				isMask := in.Op == target.And && in.Rs2 == m.SFIMask ||
					(m.Arch == target.X86 && in.Op == target.AndI && uint32(in.Imm) == p.DataMask)
				if !isMask {
					continue
				}
				in.Op = target.Nop
				in.Rd, in.Rs1, in.Rs2 = target.NoReg, target.NoReg, target.NoReg
				in.Imm = 0
				return i
			}
			return -1
		},
	},
	{
		// Widen a store displacement past the guard zone: the base
		// register is still provably in-segment, but the effective
		// address escapes the guard pages around it.
		name: "widen-store-displacement",
		why:  "store not provably inside the data segment",
		edit: func(prog *target.Program, m *target.Machine, p sfi.Policy) int {
			sp := m.OmniInt[14]
			// Prefer a store through the sandbox register; fall back to
			// a stack-relative store (PPC/SPARC sandboxed stores use the
			// indexed form, which has no displacement to widen).
			for _, wantSFI := range []bool{true, false} {
				for i := range prog.Code {
					in := &prog.Code[i]
					if !in.Op.IsStore() || in.Indexed {
						continue
					}
					if wantSFI && in.Rs1 != m.SFIAddr {
						continue
					}
					if !wantSFI && in.Rs1 != sp {
						continue
					}
					in.Imm += 2 * p.GuardZone
					return i
				}
			}
			return -1
		},
	},
	{
		// Retarget an indirect jump: read the branch target from a
		// register the code-mask proof does not cover.
		name: "retarget-indirect-jump",
		why:  "indirect branch through unsandboxed register",
		edit: func(prog *target.Program, m *target.Machine, p sfi.Policy) int {
			for i := range prog.Code {
				in := &prog.Code[i]
				if in.Op != target.Jr && in.Op != target.Jalr {
					continue
				}
				in.Rs1 = m.Scratch[0]
				return i
			}
			return -1
		},
	},
}

// The same adversarial mutations, driven through the translation
// cache's admission gate: a mutated (unsandboxed) program must never
// become a cache entry, on any machine. This is the serving-layer
// version of the verifier contract — the cache is the choke point that
// keeps a compromised translation from ever being executed.
func TestMutatedTranslationRejectedByCache(t *testing.T) {
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: mutationProgram}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := translate.Paper(true)
	si := core.SegInfoFor(mod, core.RunConfig{})
	for _, m := range target.Machines() {
		for _, mu := range mutators {
			t.Run(m.Name+"/"+mu.name, func(t *testing.T) {
				prog, err := translate.Translate(mod, m, si, opt)
				if err != nil {
					t.Fatal(err)
				}
				c := mcache.New(0)
				// The clean translation is admitted.
				if err := c.Insert(mod, m, si, opt, prog); err != nil {
					t.Fatalf("clean translation rejected: %v", err)
				}
				mutated, err := translate.Translate(mod, m, si, opt)
				if err != nil {
					t.Fatal(err)
				}
				p := sfi.PolicyFor(m, si)
				p.GuardZone = 4096
				if idx := mu.edit(mutated, m, p); idx < 0 {
					t.Fatal("no mutation site found")
				}
				c2 := mcache.New(0)
				err = c2.Insert(mod, m, si, opt, mutated)
				if err == nil {
					t.Fatal("mutated translation admitted to the cache")
				}
				if !strings.Contains(err.Error(), mu.why) {
					t.Errorf("rejection reason mismatch: want %q in %v", mu.why, err)
				}
				if s := c2.Stats(); s.Rejected != 1 || s.Entries != 0 {
					t.Errorf("cache state after rejection: %+v", s)
				}
			})
		}
	}
}

func TestSeededViolationsAreReported(t *testing.T) {
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: mutationProgram}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range target.Machines() {
		for _, mu := range mutators {
			t.Run(m.Name+"/"+mu.name, func(t *testing.T) {
				h, err := core.NewHost(mod, core.RunConfig{})
				if err != nil {
					t.Fatal(err)
				}
				prog, err := h.Translate(m, translate.Paper(true))
				if err != nil {
					t.Fatal(err)
				}
				p := policyFor(h, m)
				if p.GuardZone == 0 {
					p.GuardZone = 4096
				}

				// The unmutated translation must be violation-free —
				// otherwise the assertions below prove nothing.
				if vs := sfi.Verify(prog, p); len(vs) != 0 {
					t.Fatalf("clean translation reported violations: %s", vs[0])
				}

				idx := mu.edit(prog, m, p)
				if idx < 0 {
					t.Fatalf("no mutation site found")
				}
				vs := sfi.Verify(prog, p)
				if len(vs) == 0 {
					t.Fatalf("seeded %s at inst %d not reported", mu.name, idx)
				}
				found := false
				for _, v := range vs {
					if strings.Contains(v.Why, mu.why) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("violation class mismatch: want %q, got %s", mu.why, vs[0])
				}
			})
		}
	}
}
