package sfi_test

import (
	"strings"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/sfi"
	"omniware/internal/target"
	"omniware/internal/translate"
)

func policyFor(h *core.Host, m *target.Machine) sfi.Policy {
	return sfi.PolicyFor(m, h.SegInfo())
}

// Programs chosen to exercise every store idiom the compiler produces.
var verifierPrograms = []string{
	`
int g[100];
struct s { int a; char b; double d; } sv;
int main(void) {
	int i;
	int *p = g;
	for (i = 0; i < 100; i++) g[i] = i;
	for (i = 0; i < 100; i += 2) p[i] = -i;
	sv.a = 1; sv.b = 'x'; sv.d = 2.5;
	char *hp = _sbrk(64);
	for (i = 0; i < 64; i++) hp[i] = (char)i;
	return g[50] + (int)sv.b;
}`,
	`
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int (*f)(int) = fib;
int main(void) { return f(10); }`,
	`
short tab[4000];
int main(void) {
	int i;
	for (i = 0; i < 4000; i++) tab[i] = (short)(i * 3);
	/* large displacement from a computed base */
	short *p = tab;
	p[3999] = 7;
	return tab[3999];
}`,
}

// Every program the translator emits with SFI must pass the verifier on
// every machine.
func TestTranslatorOutputVerifies(t *testing.T) {
	for pi, src := range verifierPrograms {
		mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range target.Machines() {
			for _, hoist := range []bool{false, true} {
				h, err := core.NewHost(mod, core.RunConfig{})
				if err != nil {
					t.Fatal(err)
				}
				opt := translate.Paper(true)
				opt.SFIHoist = hoist
				prog, err := h.Translate(m, opt)
				if err != nil {
					t.Fatal(err)
				}
				if vs := sfi.Verify(prog, policyFor(h, m)); len(vs) != 0 {
					for _, v := range vs {
						t.Errorf("prog %d %s hoist=%v: %s", pi, m.Name, hoist, v)
					}
				}
			}
		}
	}
}

// Without SFI the same programs must NOT verify (the checker has
// teeth): every one contains at least one unchecked computed store.
func TestUnsandboxedCodeFailsVerification(t *testing.T) {
	for pi, src := range verifierPrograms {
		mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range target.Machines() {
			h, err := core.NewHost(mod, core.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			prog, err := h.Translate(m, translate.Paper(false))
			if err != nil {
				t.Fatal(err)
			}
			if vs := sfi.Verify(prog, policyFor(h, m)); len(vs) == 0 {
				t.Errorf("prog %d %s: unsandboxed code passed verification", pi, m.Name)
			}
		}
	}
}

// Mutating sandboxed code (deleting a masking instruction) must be
// caught.
func TestMutatedCodeFailsVerification(t *testing.T) {
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: verifierPrograms[0]}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range target.Machines() {
		h, err := core.NewHost(mod, core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := h.Translate(m, translate.Paper(true))
		if err != nil {
			t.Fatal(err)
		}
		mutated := 0
		for i := range prog.Code {
			in := &prog.Code[i]
			if in.Cat == target.CatSFI && (in.Op == target.And || in.Op == target.AndI) {
				in.Op = target.Nop
				in.Rd, in.Rs1, in.Rs2 = target.NoReg, target.NoReg, target.NoReg
				mutated++
				break
			}
		}
		if mutated == 0 {
			t.Fatalf("%s: no masking instruction found to mutate", m.Name)
		}
		if vs := sfi.Verify(prog, policyFor(h, m)); len(vs) == 0 {
			t.Errorf("%s: mutated code passed verification", m.Name)
		}
	}
}

// Adversarial escape attempts: each program tries a different way out
// of the sandbox; with SFI enabled, none may touch the host segment.
func TestEscapeAttemptsContained(t *testing.T) {
	attempts := []struct{ name, src string }{
		{"wild-pointer", `
int main(void) { *(int *)0x40000100 = 1; return 0; }`},
		{"big-displacement", `
int main(void) {
	char *p = _sbrk(16);
	p[0x20000000] = 1; /* base + 512MB */
	return 0;
}`},
		{"negative-displacement", `
int g;
int main(void) {
	int *p = &g;
	p[-0x4000000] = 1;
	return 0;
}`},
		{"array-overrun", `
int small[4];
int main(void) {
	int i;
	for (i = 0; i < 100000000; i += 1000000) small[i] = 1;
	return 0;
}`},
		{"sp-escape", `
int main(void) {
	int local[4];
	local[0x8000000] = 1;
	return (int)local[0];
}`},
	}
	host := make([]byte, 8192)
	for _, a := range attempts {
		mod, err := core.BuildC([]core.SourceFile{{Name: a.name + ".c", Src: a.src}}, cc.Options{OptLevel: 2})
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		for _, m := range target.Machines() {
			h, err := core.NewHost(mod, core.RunConfig{HostData: host, MaxSteps: 10_000_000})
			if err != nil {
				t.Fatal(err)
			}
			prog, err := h.Translate(m, translate.Paper(true))
			if err != nil {
				t.Fatal(err)
			}
			if vs := sfi.Verify(prog, policyFor(h, m)); len(vs) != 0 {
				t.Errorf("%s/%s: verifier rejected translator output: %s", a.name, m.Name, vs[0])
			}
			res, err := h.RunProgram(m, prog)
			if err != nil && !strings.Contains(err.Error(), "budget") {
				t.Fatalf("%s/%s: %v", a.name, m.Name, err)
			}
			_ = res // faulting inside the module is fine; escaping is not
			for i, b := range h.HostSeg.Bytes() {
				if b != 0 {
					t.Fatalf("%s/%s: host segment corrupted at %d", a.name, m.Name, i)
				}
			}
		}
	}
}
