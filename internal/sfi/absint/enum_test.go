package absint_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"omniware/internal/target"
)

// TestExhaustiveSmallModel enumerates EVERY instruction sequence up to
// the bound from the reduced per-target alphabet, wraps each in the
// canonical sandbox stub, and races the verifiers against each other
// and against the executor oracle. The default bound (length ≤ 3)
// exhausts on all four targets; OMNI_ENUM_LEN raises it for longer
// offline runs.
func TestExhaustiveSmallModel(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	maxLen := 3
	if s := os.Getenv("OMNI_ENUM_LEN"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad OMNI_ENUM_LEN %q", s)
		}
		maxLen = n
	}
	for _, m := range target.Machines() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			th := harnessFor(t, m)
			al := alphabet(th)
			total, accepted := 0, 0
			seq := make([]synthInst, 0, maxLen)
			var walk func(depth int)
			walk = func(depth int) {
				if t.Failed() && total > 0 && total%1000 == 0 {
					return // already broken; stop burning time
				}
				if depth > 0 {
					total++
					prog := buildSynth(th, seq)
					before := t.Failed()
					classify(t, th, prog, func() string {
						return fmt.Sprintf("%s enum [%s]", m.Name, seqNames(seq))
					})
					if !before && !t.Failed() {
						accepted++ // counts classified-clean, not admission
					}
				}
				if depth == maxLen {
					return
				}
				for _, si := range al {
					seq = append(seq, si)
					walk(depth + 1)
					seq = seq[:len(seq)-1]
				}
			}
			walk(0)
			want := 0
			n := 1
			for i := 0; i < maxLen; i++ {
				n *= len(al)
				want += n
			}
			if total != want {
				t.Errorf("enumerated %d sequences, expected %d (alphabet %d, length ≤ %d)",
					total, want, len(al), maxLen)
			}
			t.Logf("%s: %d sequences exhausted (alphabet %d, length ≤ %d), zero disagreements",
				m.Name, total, len(al), maxLen)
		})
	}
}

func seqNames(seq []synthInst) string {
	names := make([]string, len(seq))
	for i, si := range seq {
		names[i] = si.name
	}
	return strings.Join(names, " ")
}
