package absint_test

import (
	"testing"

	"omniware/internal/sfi/absint"
	"omniware/internal/target"
)

// maxVisitsPerInst is the explicit convergence budget: the fixpoint
// must settle with at most this many worklist visits per instruction,
// on every machine, for every adversarial CFG below. The widening at
// leaders (a growing interval jumps to top instead of creeping) is
// what keeps the bound a small constant — without it, a counter that
// grows by one per trip would be revisited ~2^32 times. The constant
// carries slack over the measured worst case (~3 visits/inst) so a
// legitimate precision improvement doesn't trip it, but a lost
// widening would blow through it by orders of magnitude (the test
// would in practice hang long before the assertion fires, which is
// why the budget is asserted rather than just logged).
const maxVisitsPerInst = 16

// widenAsm hand-assembles adversarial programs the translator would
// never emit, in the same idiom as diamondProgram: a pinning stub,
// delay-slot padding on machines that need it, explicit branch
// targets.
type widenAsm struct {
	th   *tharness
	code []target.Inst
}

func newWidenAsm(th *tharness) *widenAsm {
	a := &widenAsm{th: th}
	m, p := th.m, th.pol
	a.loadConst(m.SFIMask, p.DataMask)
	a.loadConst(m.SFIBase, p.DataBase)
	a.loadConst(m.CodeMask, 1)
	a.loadConst(m.GP, p.GPValue)
	j := a.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
	a.pad()
	a.code[j].Target = int32(len(a.code))
	return a
}

func (a *widenAsm) emit(in target.Inst) int32 {
	a.code = append(a.code, in)
	return int32(len(a.code) - 1)
}

func (a *widenAsm) pad() {
	if a.th.m.HasDelaySlot {
		a.emit(target.Inst{Op: target.Nop, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
	}
}

func (a *widenAsm) loadConst(rd target.Reg, val uint32) {
	no := target.NoReg
	if rd == no {
		return
	}
	a.emit(target.Inst{Op: target.Lui, Rd: rd, Rs1: no, Rs2: no, Imm: int32(val >> 16)})
	if lo := val & 0xffff; lo != 0 {
		a.emit(target.Inst{Op: target.OrI, Rd: rd, Rs1: rd, Rs2: no, Imm: int32(lo)})
	}
}

// sandboxStore emits each machine's real mask+rebase+store idiom (the
// one the translator produces) of val through the dedicated sandbox
// register, so every program carries a proof obligation that must
// survive the loop joins.
func (a *widenAsm) sandboxStore(val target.Reg) {
	m, p := a.th.m, a.th.pol
	no := target.NoReg
	if m.SFIMask == no { // x86: immediate-form sandboxing
		a.emit(target.Inst{Op: target.AndI, Rd: m.SFIAddr, Rs1: val, Rs2: no, Imm: int32(p.DataMask)})
		a.emit(target.Inst{Op: target.OrI, Rd: m.SFIAddr, Rs1: m.SFIAddr, Rs2: no, Imm: int32(p.DataBase)})
	} else {
		a.emit(target.Inst{Op: target.And, Rd: m.SFIAddr, Rs1: val, Rs2: m.SFIMask})
		a.emit(target.Inst{Op: target.Or, Rd: m.SFIAddr, Rs1: m.SFIAddr, Rs2: m.SFIBase})
	}
	a.emit(target.Inst{Op: target.Sw, Rd: val, Rs1: m.SFIAddr, Rs2: no, Imm: 0})
}

func (a *widenAsm) finish() *target.Program {
	no := target.NoReg
	a.emit(target.Inst{Op: target.Halt, Rd: no, Rs1: no, Rs2: no})
	trap := a.emit(target.Inst{Op: target.Break, Rd: no, Rs1: no, Rs2: no})
	return &target.Program{
		Arch:         a.th.m.Arch,
		Code:         a.code,
		Entry:        0,
		OmniToNative: []int32{trap, trap},
	}
}

// checkConverges verifies the program, requires it admitted, and
// asserts the iteration budget.
func checkConverges(t *testing.T, th *tharness, prog *target.Program, shape string) {
	t.Helper()
	var st absint.Stats
	if vs := absint.VerifyOpts(prog, th.pol, absint.Options{}, &st); len(vs) != 0 {
		t.Errorf("%s %s: rejected: %v", th.m.Name, shape, vs[0])
		return
	}
	n := len(prog.Code)
	if st.Iterations == 0 || st.Blocks == 0 {
		t.Errorf("%s %s: empty analysis stats %+v", th.m.Name, shape, st)
	}
	if st.Iterations > maxVisitsPerInst*n {
		t.Errorf("%s %s: fixpoint took %d visits for %d insts (> %d/inst) — widening regressed",
			th.m.Name, shape, st.Iterations, n, maxVisitsPerInst)
	}
	t.Logf("%s %s: %d insts, %d blocks, %d visits (%.1f/inst)",
		th.m.Name, shape, n, st.Blocks, st.Iterations, float64(st.Iterations)/float64(n))
}

// nestedLoopProgram builds depth nested counting loops, each with its
// own counter register decremented at its back-edge, around an
// innermost sandboxed store of a register that grows every trip — the
// classic shape whose interval facts never stabilize without
// widening.
func nestedLoopProgram(th *tharness, depth int) *target.Program {
	a := newWidenAsm(th)
	m := th.m
	no := target.NoReg
	val := m.OmniInt[1]
	a.loadConst(val, 1)
	counters := make([]target.Reg, depth)
	heads := make([]int32, depth)
	for d := 0; d < depth; d++ {
		// Cycle through the registers every machine holds in real
		// registers (x86 has only OmniInt[1..4]); sharing a counter
		// register across nesting levels is nonsense at runtime but
		// the analysis is static and the CFG shape is what matters.
		counters[d] = m.OmniInt[2+d%3]
		a.loadConst(counters[d], 100)
		heads[d] = int32(len(a.code))
	}
	a.sandboxStore(val)
	a.emit(target.Inst{Op: target.AddI, Rd: val, Rs1: val, Rs2: no, Imm: 1})
	for d := depth - 1; d >= 0; d-- {
		a.emit(target.Inst{Op: target.AddI, Rd: counters[d], Rs1: counters[d], Rs2: no, Imm: -1})
		b := a.emit(target.Inst{Op: target.Bnez, Rd: no, Rs1: counters[d], Rs2: no})
		a.code[b].Target = heads[d]
		a.pad()
	}
	return a.finish()
}

// selfLoopProgram builds k self-loops whose heads are their own
// branch targets — every loop head is simultaneously a leader, a
// widening point, and its own successor — plus one literal
// single-instruction self-loop at the end.
func selfLoopProgram(th *tharness, k int) *target.Program {
	a := newWidenAsm(th)
	m := th.m
	no := target.NoReg
	val := m.OmniInt[1]
	a.loadConst(val, 1)
	for i := 0; i < k; i++ {
		head := int32(len(a.code))
		a.emit(target.Inst{Op: target.AddI, Rd: val, Rs1: val, Rs2: no, Imm: 1})
		a.sandboxStore(val)
		b := a.emit(target.Inst{Op: target.Bnez, Rd: no, Rs1: val, Rs2: no})
		a.code[b].Target = head
		a.pad()
	}
	// A branch that targets itself: leader == back-edge source.
	self := int32(len(a.code))
	a.emit(target.Inst{Op: target.Bnez, Rd: no, Rs1: val, Rs2: no})
	a.code[self].Target = self
	a.pad()
	return a.finish()
}

// delaySlotBackEdgeProgram puts each loop's counter update in the
// back-edge's delay slot on machines that have one (the update
// executes after the branch decides, so the fact flowing around the
// back edge is the post-slot state), chained k loops deep.
func delaySlotBackEdgeProgram(th *tharness, k int) *target.Program {
	a := newWidenAsm(th)
	m := th.m
	no := target.NoReg
	val := m.OmniInt[1]
	a.loadConst(val, 1)
	for i := 0; i < k; i++ {
		c := m.OmniInt[2+i%3]
		a.loadConst(c, 64)
		head := int32(len(a.code))
		a.sandboxStore(val)
		b := a.emit(target.Inst{Op: target.Bnez, Rd: no, Rs1: c, Rs2: no})
		a.code[b].Target = head
		if m.HasDelaySlot {
			a.emit(target.Inst{Op: target.AddI, Rd: c, Rs1: c, Rs2: no, Imm: -1})
		}
	}
	return a.finish()
}

// TestWideningConvergence drives the fixpoint over adversarial loop
// CFGs on every machine and asserts the explicit iteration budget —
// the guarantee that admission-time analysis stays linear-ish in
// program size no matter what shape arrives.
func TestWideningConvergence(t *testing.T) {
	for _, th := range harnesses(t) {
		checkConverges(t, th, nestedLoopProgram(th, 8), "nested-loops(8)")
		checkConverges(t, th, selfLoopProgram(th, 6), "self-loops(6)")
		checkConverges(t, th, delaySlotBackEdgeProgram(th, 6), "delay-slot-back-edges(6)")
	}
}
