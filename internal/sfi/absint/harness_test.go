package absint_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/seg"
	"omniware/internal/sfi"
	"omniware/internal/sfi/absint"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// harnessSrc is the module every differential host loads: small enough
// that a full run fits a tiny instruction budget, but exercising loops,
// an indirect call, and computed stores so mutation mode has real SFI
// sequences to corrupt.
const harnessSrc = `
int g[32];
int f(int x) { g[x & 31] = x; return x + 1; }
int (*fp)(int) = f;
int main(void) {
	int i, s = 0;
	for (i = 0; i < 8; i++) s += fp(i);
	g[0] = s;
	return s;
}`

// tharness is one target's differential rig: a live host whose segment
// the policy describes, the genuine translation of harnessSrc for
// mutation mode, and a rebindable store-trace sink for the executor
// oracle.
type tharness struct {
	m    *target.Machine
	host *core.Host
	pol  sfi.Policy
	base *target.Program
	sink func(addr, size uint32, faulted bool)
}

var (
	harnessOnce sync.Once
	harnessErr  error
	harnessMap  map[string]*tharness
)

// harnesses builds (once) a rig per target.
func harnesses(t testing.TB) map[string]*tharness {
	harnessOnce.Do(func() {
		mod, err := core.BuildC([]core.SourceFile{{Name: "h.c", Src: harnessSrc}}, cc.Options{OptLevel: 2})
		if err != nil {
			harnessErr = err
			return
		}
		harnessMap = map[string]*tharness{}
		for _, m := range target.Machines() {
			th := &tharness{m: m}
			cfg := core.RunConfig{
				MaxSteps: 5000,
				Out:      io.Discard,
			}
			cfg.StoreTrace = func(addr, size uint32, faulted bool) {
				if th.sink != nil {
					th.sink(addr, size, faulted)
				}
			}
			h, err := core.NewHost(mod, cfg)
			if err != nil {
				harnessErr = err
				return
			}
			th.host = h
			th.pol = sfi.PolicyFor(m, h.SegInfo())
			if th.pol.GuardZone == 0 {
				th.pol.GuardZone = 4096
			}
			// A WRITABLE victim segment well away from the sandbox: the
			// segment layer would let an escaping store through to it,
			// so the oracle does not depend on everything else being
			// unmapped. Placed clear of the guard zones.
			vbase := uint32(0x60000000)
			segLo := h.Lay.Seg.Base
			segHi := segLo + h.Lay.Seg.Size()
			if vbase+0x10000 > segLo-0x10000 && vbase < segHi+0x10000 {
				vbase = 0x20000000
			}
			if _, err := h.Mem.Map("victim", vbase, 0x10000, seg.Read|seg.Write); err != nil {
				harnessErr = err
				return
			}
			prog, err := h.Translate(m, translate.Paper(true))
			if err != nil {
				harnessErr = err
				return
			}
			th.base = prog
			harnessMap[m.Name] = th
		}
	})
	if harnessErr != nil {
		t.Fatalf("building differential harness: %v", harnessErr)
	}
	return harnessMap
}

func harnessFor(t testing.TB, m *target.Machine) *tharness {
	return harnesses(t)[m.Name]
}

// contained runs prog in the harness host and reports every successful
// store that landed outside the sandbox's containment window — the
// executor oracle. The window is the data segment plus its guard zones
// (guard-zone displacements are admitted by design; real deployments
// leave those pages unmapped). Faults, exceptions, and budget
// exhaustion are contained outcomes; only a store the segment layer let
// through outside the window is an escape.
func (th *tharness) contained(prog *target.Program) (escapes []string) {
	lo := int64(th.pol.DataBase) - int64(th.pol.GuardZone)
	hi := int64(th.pol.DataBase) + int64(th.pol.DataMask) + int64(th.pol.GuardZone)
	th.sink = func(addr, size uint32, faulted bool) {
		if faulted {
			return
		}
		if int64(addr) < lo || int64(addr)+int64(size)-1 > hi {
			escapes = append(escapes, fmt.Sprintf("store %#x+%d outside [%#x,%#x]", addr, size, lo, hi))
		}
	}
	defer func() { th.sink = nil }()
	th.host.RunProgram(th.m, prog) // any error is a contained outcome
	return escapes
}

// ---------------------------------------------------------------------
// Program synthesis: a reduced per-target instruction alphabet and a
// builder that wraps a short sequence in a canonical sandbox stub.

// Branch-target placeholders resolved by buildSynth.
const (
	tgtNone = iota
	tgtSeq  // the sequence start (a back edge once inside the sequence)
	tgtHalt // the halt trailer
)

type synthInst struct {
	name string
	in   target.Inst
	tgt  int
}

// buildSynth assembles: [stub | seq... | Halt | Break], with the stub
// loading every dedicated register exactly as the translator's entry
// stub does, then jumping to the sequence. The omni-to-native map has
// four entries — sequence start, halt, and two trap slots — so indirect
// branches and exception delivery have real landing sites.
func buildSynth(th *tharness, seq []synthInst) *target.Program {
	m, p := th.m, th.pol
	var code []target.Inst
	load := func(rd target.Reg, val uint32) {
		if rd == target.NoReg {
			return
		}
		if m.Arch == target.X86 {
			code = append(code, target.Inst{Op: target.MovI, Rd: rd, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(val)})
			return
		}
		code = append(code, target.Inst{Op: target.Lui, Rd: rd, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(val >> 16)})
		if lo := val & 0xffff; lo != 0 {
			code = append(code, target.Inst{Op: target.OrI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: int32(lo)})
		}
	}
	const nOmni = 4
	load(m.SFIMask, p.DataMask)
	load(m.SFIBase, p.DataBase)
	load(m.CodeMask, nOmni-1)
	load(m.GP, p.GPValue)
	jIdx := len(code)
	code = append(code, target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
	if m.HasDelaySlot {
		code = append(code, target.Inst{Op: target.Nop, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
	}
	seqStart := int32(len(code))
	code[jIdx].Target = seqStart
	for _, si := range seq {
		code = append(code, si.in)
	}
	haltIdx := int32(len(code))
	code = append(code, target.Inst{Op: target.Halt, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
	trapIdx := int32(len(code))
	code = append(code, target.Inst{Op: target.Break, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
	for i, si := range seq {
		switch si.tgt {
		case tgtSeq:
			code[int(seqStart)+i].Target = seqStart
		case tgtHalt:
			code[int(seqStart)+i].Target = haltIdx
		}
	}
	return &target.Program{
		Arch:         m.Arch,
		Code:         code,
		Entry:        0,
		OmniToNative: []int32{seqStart, haltIdx, trapIdx, trapIdx},
	}
}

// alphabet is the reduced per-target instruction set the fuzzer and the
// exhaustive enumerator draw from. It deliberately contains both the
// translator's sandbox idioms and near-miss variants (boundary and
// over-boundary displacements, unmasked bases, over-wide code masks) so
// the accept/reject frontier is inside the enumerated space. It
// excludes syscalls and writes to the stack pointer: both are outside
// what either verifier claims to prove (sp is trusted by name).
func alphabet(th *tharness) []synthInst {
	m, p := th.m, th.pol
	A := m.SFIAddr
	no := target.NoReg
	g := p.GuardZone
	R := m.OmniInt[2] // a general computation register
	ins := func(name string, in target.Inst) synthInst {
		return synthInst{name: name, in: in}
	}
	sw := func(name string, base target.Reg, imm int32) synthInst {
		return ins(name, target.Inst{Op: target.Sw, Rd: R, Rs1: base, Rs2: no, Imm: imm})
	}
	sp := m.OmniInt[14]
	var out []synthInst
	if m.Arch == target.X86 {
		out = append(out,
			ins("mask", target.Inst{Op: target.AndI, Rd: A, Rs1: R, Rs2: no, Imm: int32(p.DataMask)}),
			ins("rebase", target.Inst{Op: target.OrI, Rd: A, Rs1: A, Rs2: no, Imm: int32(p.DataBase)}),
			ins("codebound", target.Inst{Op: target.AndI, Rd: A, Rs1: R, Rs2: no, Imm: 3}),
			ins("codebound.over", target.Inst{Op: target.AndI, Rd: A, Rs1: R, Rs2: no, Imm: 7}),
			ins("memdst.in", target.Inst{Op: target.Add, Rd: no, Rs1: R, Rs2: no, Imm: int32(p.DataBase + 16), MemDst: true}),
			ins("memdst.out", target.Inst{Op: target.Add, Rd: no, Rs1: R, Rs2: no, Imm: 0x100, MemDst: true}),
		)
	} else {
		out = append(out,
			ins("mask", target.Inst{Op: target.And, Rd: A, Rs1: R, Rs2: m.SFIMask}),
			ins("rebase", target.Inst{Op: target.Or, Rd: A, Rs1: A, Rs2: m.SFIBase}),
			ins("codebound", target.Inst{Op: target.And, Rd: A, Rs1: R, Rs2: m.CodeMask}),
			ins("st.idx", target.Inst{Op: target.Sw, Rd: R, Rs1: m.SFIBase, Rs2: A, Indexed: true}),
			sw("st.gp", m.GP, 8),
			sw("st.gp.far", m.GP, 0x7000),
		)
	}
	out = append(out,
		ins("fold", target.Inst{Op: target.AddI, Rd: A, Rs1: A, Rs2: no, Imm: 8}),
		ins("fold.edge", target.Inst{Op: target.AddI, Rd: A, Rs1: A, Rs2: no, Imm: -g}),
		ins("fold.over", target.Inst{Op: target.AddI, Rd: A, Rs1: A, Rs2: no, Imm: g + 1}),
		sw("st", A, 0),
		sw("st.disp", A, 8),
		sw("st.edge", A, g),
		sw("st.over", A, g+4),
		sw("st.raw", R, 0),
		sw("st.sp", sp, 8),
		sw("st.sp.over", sp, g+4),
		ins("const.in", target.Inst{Op: target.MovI, Rd: R, Rs1: no, Rs2: no, Imm: int32(p.DataBase + 64)}),
		ins("const.out", target.Inst{Op: target.MovI, Rd: R, Rs1: no, Rs2: no, Imm: 64}),
		ins("const.code", target.Inst{Op: target.MovI, Rd: R, Rs1: no, Rs2: no, Imm: 2}),
		ins("mov", target.Inst{Op: target.Mov, Rd: A, Rs1: R, Rs2: no}),
		ins("jr.a", target.Inst{Op: target.Jr, Rd: no, Rs1: A, Rs2: no}),
		ins("jr.r", target.Inst{Op: target.Jr, Rd: no, Rs1: R, Rs2: no}),
		synthInst{name: "beqz.halt", in: target.Inst{Op: target.Beqz, Rd: no, Rs1: R, Rs2: no}, tgt: tgtHalt},
		synthInst{name: "beqz.back", in: target.Inst{Op: target.Beqz, Rd: no, Rs1: R, Rs2: no}, tgt: tgtSeq},
		ins("nop", target.Inst{Op: target.Nop, Rd: no, Rs1: no, Rs2: no}),
	)
	return out
}

// ---------------------------------------------------------------------
// The differential classifier shared by the fuzzer and the enumerator.

// classify races sfi.Check, the full abstract interpreter, and the
// Compat-mode classifier on prog and enforces the agreement contract:
//
//   - Compat mode must agree with sfi.Check exactly: any difference is a
//     bug in one of them.
//   - The full interpreter must dominate sfi.Check: anything the elder
//     verifier proves, joins and value tracking must also prove.
//   - Anything either verifier accepts must be contained when executed
//     (the oracle).
//
// The only tolerated difference — full accepts, Check and Compat both
// reject — is the documented extra precision of path-sensitive joins,
// and it still has to pass the executor oracle.
func classify(t testing.TB, th *tharness, prog *target.Program, tag func() string) {
	checkVs := sfi.Verify(prog, th.pol)
	fullVs := absint.Verify(prog, th.pol)
	checkOK := len(checkVs) == 0
	fullOK := len(fullVs) == 0
	if checkOK != fullOK {
		compatVs := absint.VerifyOpts(prog, th.pol, absint.Options{Compat: true}, nil)
		compatOK := len(compatVs) == 0
		if compatOK != checkOK {
			t.Errorf("%s: sfi.Check %v but compat absint %v\ncheck: %v\ncompat: %v",
				tag(), verdict(checkOK), verdict(compatOK), checkVs, compatVs)
			return
		}
		if checkOK && !fullOK {
			t.Errorf("%s: sfi.Check accepts but full absint rejects (dominance broken): %v", tag(), fullVs)
			return
		}
	}
	if checkOK || fullOK {
		if esc := th.contained(prog); len(esc) != 0 {
			t.Errorf("%s: accepted (check=%v absint=%v) yet escaped: %v",
				tag(), verdict(checkOK), verdict(fullOK), esc)
		}
	}
}

func verdict(ok bool) string {
	if ok {
		return "accepts"
	}
	return "rejects"
}
