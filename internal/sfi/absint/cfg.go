package absint

import (
	"omniware/internal/target"
)

// CFG is the control-flow structure the abstract interpreter runs
// over, exported so other whole-program analyses (the admission-time
// auditor in internal/audit) share exactly the graph the verifier
// proves on — same leader set, same delay-slot edge discipline, same
// omni-to-native pinning — instead of growing a subtly different one.
//
// The graph is implicit: nodes are instruction indices, and Succs
// enumerates edges. Three facts are precomputed:
//
//   - Leaders marks every instruction control can reach other than by
//     falling through: direct branch/jump targets, the program entry,
//     and every omni-to-native map entry.
//   - O2NDest marks the subset entered through the omni-to-native map.
//     Indirect branches and exception delivery land only on those, so
//     an analysis may pin their entry states (the verifier pins them to
//     the stub state).
//   - DelaySlot records whether the machine transfers after the slot
//     executes, which moves the branch-target edge from the branch to
//     the instruction after it.
type CFG struct {
	Code      []target.Inst
	Entry     int32
	DelaySlot bool
	Leaders   []bool
	O2NDest   []bool
}

// BuildCFG computes the control-flow structure of prog on m.
func BuildCFG(prog *target.Program, m *target.Machine) *CFG {
	n := len(prog.Code)
	g := &CFG{
		Code:      prog.Code,
		Entry:     prog.Entry,
		DelaySlot: m.HasDelaySlot,
		Leaders:   make([]bool, n),
		O2NDest:   make([]bool, n),
	}
	mark := func(t int32) {
		if t >= 0 && int(t) < n {
			g.Leaders[t] = true
		}
	}
	if int(prog.Entry) < n {
		mark(prog.Entry)
	}
	for i := range prog.Code {
		in := &prog.Code[i]
		if in.Op.IsBranch() || in.Op == target.J || in.Op == target.Jal {
			mark(in.Target)
		}
	}
	for _, t := range prog.OmniToNative {
		if t >= 0 && int(t) < n {
			g.Leaders[t] = true
			g.O2NDest[t] = true
		}
	}
	return g
}

// directTarget returns the statically known transfer target of in, if
// it has one.
func directTarget(in *target.Inst) (int32, bool) {
	if in.Op.IsBranch() || in.Op == target.J || in.Op == target.Jal {
		return in.Target, true
	}
	return 0, false
}

// Succs appends instruction i's successor indices to buf and returns
// it. Fall-through edges are universal — even after an unconditional
// transfer — which is the shadow state unreachable code is analyzed
// under (mirroring the elder verifier's linear scan, so dead code
// cannot become a disagreement between the two verifiers). Delay-slot
// machines transfer after the slot executes, so the branch-target edge
// leaves the slot, not the branch. Jr/Jalr successors are the
// omni-to-native entries (see O2NDest); no explicit edges are emitted
// for them.
func (g *CFG) Succs(i int, buf []int32) []int32 {
	if i+1 < len(g.Code) {
		buf = append(buf, int32(i+1))
	}
	if g.DelaySlot {
		if i > 0 {
			if t, ok := directTarget(&g.Code[i-1]); ok {
				buf = append(buf, t)
			}
		}
	} else if t, ok := directTarget(&g.Code[i]); ok {
		buf = append(buf, t)
	}
	return buf
}

// Blocks counts the fact boundaries (leaders) in the program — the
// number the verifier reports in Stats.Blocks.
func (g *CFG) Blocks() int {
	n := 0
	for _, l := range g.Leaders {
		if l {
			n++
		}
	}
	return n
}
