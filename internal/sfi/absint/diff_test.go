package absint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"omniware/internal/sfi"
	"omniware/internal/target"
)

// FuzzDifferentialSFI races the two verifiers. Each input decodes to a
// target machine plus either (a) a synthesized raw program — a short
// sequence from the reduced alphabet wrapped in the canonical sandbox
// stub — or (b) a mutation of the genuine translation of harnessSrc.
// classify() then enforces the agreement contract and, for anything
// either verifier admits, the executor's write-trace oracle. The seed
// corpus under testdata/fuzz/FuzzDifferentialSFI is checked in; plain
// `go test` replays every seed, and TestDifferentialSeedCorpus pins
// each seed's admission verdict so the corpus cannot silently rot.

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite the checked-in fuzz seed corpus")

func FuzzDifferentialSFI(f *testing.F) {
	for _, s := range diffCorpusSeeds(f) {
		f.Add(s.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, th, desc := decodeProgram(t, data)
		if prog == nil {
			return
		}
		classify(t, th, prog, func() string { return desc })
	})
}

// decodeProgram maps fuzz bytes to a program and its harness:
//
//	data[0] % targets  — machine
//	data[1] % 2        — 0: synthesize, 1: mutate the genuine translation
//	synthesize: up to 4 further bytes, each % len(alphabet), pick the sequence
//	mutate:     [idx16][field][val32] corrupts one instruction
func decodeProgram(tb testing.TB, data []byte) (*target.Program, *tharness, string) {
	if len(data) < 3 {
		return nil, nil, ""
	}
	ms := target.Machines()
	th := harnessFor(tb, ms[int(data[0])%len(ms)])
	if data[1]%2 == 0 {
		al := alphabet(th)
		var seq []synthInst
		for i, b := range data[2:] {
			if i == 4 {
				break
			}
			seq = append(seq, al[int(b)%len(al)])
		}
		return buildSynth(th, seq), th,
			fmt.Sprintf("%s synth [%s]", th.m.Name, seqNames(seq))
	}
	d := make([]byte, 9)
	copy(d, data)
	prog := cloneProgram(th.base)
	idx := (int(d[2]) | int(d[3])<<8) % len(prog.Code)
	val := uint32(d[5]) | uint32(d[6])<<8 | uint32(d[7])<<16 | uint32(d[8])<<24
	in := &prog.Code[idx]
	field := d[4] % 6
	switch field {
	case 0:
		in.Imm = int32(val)
	case 1:
		in.Rd = target.Reg(val % 32)
	case 2:
		in.Rs1 = target.Reg(val % 32)
	case 3:
		in.Rs2 = target.Reg(val % 32)
	case 4:
		ops := []target.Op{target.Sw, target.Sb, target.AddI, target.And, target.Or, target.Mov, target.Jr, target.Nop}
		in.Op = ops[int(val)%len(ops)]
	case 5:
		if in.Op.IsBranch() || in.Op == target.J || in.Op == target.Jal {
			in.Target = int32(int(val) % len(prog.Code))
		}
	}
	return prog, th, fmt.Sprintf("%s mutate inst %d field %d val %#x", th.m.Name, idx, field, val)
}

func cloneProgram(p *target.Program) *target.Program {
	q := *p
	q.Code = append([]target.Inst(nil), p.Code...)
	q.OmniToNative = append([]int32(nil), p.OmniToNative...)
	return &q
}

// ---------------------------------------------------------------------
// The checked-in seed corpus.

type dseed struct {
	name string
	data []byte
	// verdict pins sfi.Check's admission: "accept", "reject", or "any"
	// (mutation seeds, where the verdict depends on translator output).
	verdict string
}

// buildDiffSeeds constructs the corpus: for every target, the accepting
// sandbox idioms, their rejecting near-misses at the guard-zone
// boundary, delay-slot branch shapes, and a mutation-mode smoke seed.
func buildDiffSeeds(t testing.TB) []dseed {
	var out []dseed
	for ti, m := range target.Machines() {
		th := harnessFor(t, m)
		al := alphabet(th)
		idx := func(name string) byte {
			for i, si := range al {
				if si.name == name {
					return byte(i)
				}
			}
			t.Fatalf("%s: no alphabet entry %q", m.Name, name)
			return 0
		}
		synth := func(name, verdict string, insts ...string) {
			data := []byte{byte(ti), 0}
			for _, n := range insts {
				data = append(data, idx(n))
			}
			out = append(out, dseed{name: m.Name + "-" + name, data: data, verdict: verdict})
		}
		synth("accept-sandboxed-store", "accept", "mask", "rebase", "st")
		synth("accept-guard-edge", "accept", "mask", "rebase", "st.edge")
		synth("reject-guard-over", "reject", "mask", "rebase", "st.over")
		synth("accept-guard-fold", "accept", "mask", "rebase", "fold.edge", "st")
		synth("reject-masked-unbased", "reject", "mask", "st.disp")
		synth("reject-raw-store", "reject", "st.raw")
		synth("accept-sp-guard", "accept", "st.sp")
		synth("reject-sp-over", "reject", "st.sp.over")
		synth("accept-code-indirect", "accept", "codebound", "jr.a")
		synth("reject-raw-indirect", "reject", "jr.r")
		synth("accept-const-indirect", "accept", "const.code", "jr.r")
		synth("accept-branch-exit", "accept", "beqz.halt", "nop", "st.sp")
		synth("reject-clobbered-fold", "reject", "mask", "fold.over", "st")
		if m.Arch == target.X86 {
			synth("accept-memdst", "accept", "memdst.in")
			synth("reject-memdst-out", "reject", "memdst.out")
		} else {
			synth("accept-indexed", "accept", "mask", "st.idx")
			synth("accept-gp-store", "accept", "st.gp")
			// Regression: the length-4 enumerator's find. A constant
			// input makes the mask fold to an exact value; the guard
			// fold wraps it below zero; the indexed sum must normalize
			// mod 2^32 or the abstract interpreter loses dominance.
			synth("accept-wrapped-fold-indexed", "accept", "const.in", "mask", "fold.edge", "st.idx")
		}
		out = append(out, dseed{
			name:    m.Name + "-mutate-smoke",
			data:    []byte{byte(ti), 1, 0, 0, 0, 0, 0, 0, 0},
			verdict: "any",
		})
		if m.Arch == target.X86 {
			// Regression: the fuzzer's first find. Mutating a mask's
			// immediate to 0 (`and r5, r5, 0` — exactly 0 whatever the
			// input) made the abstract interpreter's constant fold
			// prove a store sfi.Check could not: kcStep did not fold
			// AndI. The fold is now mirrored in both.
			out = append(out, dseed{
				name:    m.Name + "-mutate-andi-zero",
				data:    []byte{byte(ti), 1, 23, 0, 0, 0, 0, 0, 0},
				verdict: "any",
			})
		}
	}
	return out
}

const diffCorpusDir = "testdata/fuzz/FuzzDifferentialSFI"

// diffCorpusSeeds reads the checked-in corpus (rewriting it first under
// -regen-corpus) in Go's seed-corpus file format.
func diffCorpusSeeds(t testing.TB) []dseed {
	want := buildDiffSeeds(t)
	if *regenCorpus {
		if err := os.MkdirAll(diffCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, s := range want {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s.data)
			if err := os.WriteFile(filepath.Join(diffCorpusDir, "seed-"+s.name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	names, err := filepath.Glob(filepath.Join(diffCorpusDir, "seed-*"))
	if err != nil || len(names) == 0 {
		t.Fatalf("seed corpus missing under %s (err=%v); regenerate with -regen-corpus", diffCorpusDir, err)
	}
	byName := map[string]dseed{}
	for _, s := range want {
		byName["seed-"+s.name] = s
	}
	var out []dseed
	for _, name := range names {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go fuzz corpus file", name)
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		decoded, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, ok := byName[filepath.Base(name)]
		if !ok {
			t.Fatalf("%s: unknown corpus entry; if intentionally added, register it in buildDiffSeeds", name)
		}
		s.data = []byte(decoded)
		out = append(out, s)
	}
	return out
}

// TestDifferentialSeedCorpus is the plain-`go test` pass over the
// checked-in corpus: the corpus may only grow (CI fails if it shrinks
// below the designed seed set), every seed must satisfy the full
// differential contract, and each pinned admission verdict must hold.
func TestDifferentialSeedCorpus(t *testing.T) {
	seeds := diffCorpusSeeds(t)
	if want := len(buildDiffSeeds(t)); len(seeds) < want {
		t.Fatalf("corpus has %d entries, want at least %d; regenerate with -regen-corpus", len(seeds), want)
	}
	for _, s := range seeds {
		prog, th, desc := decodeProgram(t, s.data)
		if prog == nil {
			t.Errorf("seed %s: does not decode to a program", s.name)
			continue
		}
		classify(t, th, prog, func() string { return "seed " + s.name + ": " + desc })
		admitted := len(sfi.Verify(prog, th.pol)) == 0
		switch s.verdict {
		case "accept":
			if !admitted {
				t.Errorf("seed %s: pinned as accepting but sfi.Check rejects", s.name)
			}
		case "reject":
			if admitted {
				t.Errorf("seed %s: pinned as rejecting but sfi.Check accepts", s.name)
			}
		}
	}
}
