// Package absint is the second, independently-structured SFI verifier:
// an abstract interpretation over the translated program's control-flow
// graph. Where sfi.Verify runs one linear scan with block-local boolean
// facts about the dedicated sandbox register, this verifier tracks a
// small value domain — exact constants, unsigned intervals, and
// stack-pointer-relative displacements — for every register, propagates
// it along real successor edges (fall-through, branch targets, and the
// delay-slot edges of MIPS/SPARC), joins at control-flow merges, and
// runs to a fixpoint. Every store and indirect branch must then be
// discharged from the facts holding on ALL paths reaching it.
//
// The two verifiers share only the policy (sfi.Policy) and the
// violation report type; the analysis machinery is deliberately
// disjoint so a blind spot in one implementation is unlikely to be
// mirrored in the other. The differential fuzzer and the exhaustive
// small-model enumerator in this package race them against each other
// and against the executor's write-trace oracle.
//
// Shared assumptions (documented in DESIGN.md §9): the stack pointer
// is runtime-maintained and stays inside the segment, so a store
// through it with a guard-zone displacement is safe by name; and the
// omni-to-native map bounds every indirect transfer, so any target
// below its length is safe.
package absint

import (
	"fmt"

	"omniware/internal/sfi"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// Stats describes one verification pass: the proof obligations
// discharged and the size of the fixpoint computation.
type Stats struct {
	Stores     int // store obligations proven contained
	Indirects  int // indirect-branch obligations proven contained
	Blocks     int // fact boundaries (CFG leaders) in the program
	Iterations int // worklist instruction visits until fixpoint
}

// Options tunes the analysis. The zero value is the full verifier.
type Options struct {
	// Compat restricts the analysis to the elder verifier's rule
	// shapes: facts reset at block boundaries instead of joining,
	// interval reasoning applies only to the dedicated sandbox
	// register, and the stack pointer is trusted by name only. The
	// differential harness uses it to classify a disagreement: if the
	// full verifier accepts what sfi.Check rejects but Compat mode
	// agrees with sfi.Check, the difference is exactly the documented
	// extra precision (cross-block joins, value tracking through
	// copies) and not a bug in either implementation.
	Compat bool
}

// Check verifies prog against PolicyFor(m, si) and reports failure as
// an error naming the first violations, mirroring sfi.Check's contract.
func Check(prog *target.Program, m *target.Machine, si translate.SegInfo) error {
	_, err := CheckStats(prog, m, si)
	return err
}

// CheckStats is Check plus the analysis statistics.
func CheckStats(prog *target.Program, m *target.Machine, si translate.SegInfo) (Stats, error) {
	var st Stats
	vs := VerifyOpts(prog, sfi.PolicyFor(m, si), Options{}, &st)
	if len(vs) == 0 {
		return st, nil
	}
	const show = 3
	msg := fmt.Sprintf("absint: %d violation(s)", len(vs))
	for i, v := range vs {
		if i == show {
			msg += "; ..."
			break
		}
		msg += "; " + v.String()
	}
	return st, fmt.Errorf("%s", msg)
}

// Verify runs the full analysis and returns every undischarged
// obligation (nil means the program is admitted).
func Verify(prog *target.Program, p sfi.Policy) []sfi.Violation {
	return VerifyOpts(prog, p, Options{}, nil)
}

// VerifyOpts is Verify with analysis options and an optional stats
// sink.
func VerifyOpts(prog *target.Program, p sfi.Policy, o Options, st *Stats) []sfi.Violation {
	if p.GuardZone == 0 {
		p.GuardZone = 4096
	}
	v := &verifier{prog: prog, p: p, m: p.Machine, o: o, st: st}
	return v.run()
}

// ---------------------------------------------------------------------
// The abstract domain.

type kind uint8

const (
	top   kind = iota // nothing known (zero value)
	konst             // exactly lo (== hi), a uint32 value
	ival              // value ≡ x mod 2^32 for some x ∈ [lo, hi]
	spRel             // value = sp + d for some d ∈ [lo, hi]
)

// fact is one register's abstract value. The zero value is top.
type fact struct {
	k      kind
	lo, hi int64
}

func cst(v uint32) fact { return fact{k: konst, lo: int64(v), hi: int64(v)} }

// interval normalizes [lo, hi] to a fact. A negative lower bound is
// allowed (a guard fold below the segment wraps transiently and un-wraps
// in the subsequent address sum); bounds outside [-2^31, 2^32) go to
// top. Bit-operation rules require lo >= 0 — only addition distributes
// over the transient wrap.
func interval(lo, hi int64) fact {
	if lo > hi || lo < -(1<<31) || hi >= 1<<32 {
		return fact{}
	}
	if lo == hi && lo >= 0 {
		return fact{k: konst, lo: lo, hi: hi}
	}
	return fact{k: ival, lo: lo, hi: hi}
}

const spWindow = 1 << 31

func spRelative(lo, hi int64) fact {
	if lo > hi || lo < -spWindow || hi > spWindow {
		return fact{}
	}
	return fact{k: spRel, lo: lo, hi: hi}
}

// join is the lattice join; widen forces a growing interval to top so
// loops terminate.
func join(a, b fact, widen bool) fact {
	if a == b {
		return a
	}
	if a.k == top || b.k == top {
		return fact{}
	}
	if a.k == spRel || b.k == spRel {
		if a.k == spRel && b.k == spRel && !widen {
			return spRelative(min64(a.lo, b.lo), max64(a.hi, b.hi))
		}
		return fact{}
	}
	// konst/ival mix: both describe plain unsigned values.
	if widen && a.k == ival {
		return fact{}
	}
	return interval(min64(a.lo, b.lo), max64(a.hi, b.hi))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// state maps every register (int file 0..31; the FP file's entries are
// unused and stay top) to its fact.
type state [64]fact

func (s *state) get(r target.Reg) fact {
	if r < 0 || int(r) >= len(s) {
		return fact{}
	}
	return s[r]
}

func (s *state) set(r target.Reg, f fact) {
	if r >= 0 && int(r) < len(s) {
		s[r] = f
	}
}

// ---------------------------------------------------------------------
// The verifier.

type verifier struct {
	prog *target.Program
	p    sfi.Policy
	m    *target.Machine
	o    Options
	st   *Stats

	sp       target.Reg
	expected map[target.Reg]uint32 // dedicated registers' pinned values
	estab    map[target.Reg]bool   // provably loaded by the entry stub
	stubEnd  int

	cfg     *CFG
	leaders []bool // any non-fall-through entry point
	o2nDest []bool // entered via the omni-to-native map (pinned state)
}

func (v *verifier) run() []sfi.Violation {
	prog, m := v.prog, v.m
	n := len(prog.Code)
	if n == 0 {
		return nil
	}
	v.sp = m.OmniInt[14]

	v.expected = map[target.Reg]uint32{}
	pin := func(r target.Reg, val uint32) {
		if r != target.NoReg {
			v.expected[r] = val
		}
	}
	pin(m.SFIMask, v.p.DataMask)
	pin(m.SFIBase, v.p.DataBase)
	if len(prog.OmniToNative) > 0 {
		pin(m.CodeMask, uint32(len(prog.OmniToNative)-1))
	} else {
		pin(m.CodeMask, 0)
	}
	pin(m.GP, v.p.GPValue)

	v.cfg = BuildCFG(prog, m)
	v.leaders = v.cfg.Leaders
	v.o2nDest = v.cfg.O2NDest
	v.scanStub()

	// Fixpoint over per-instruction entry states.
	in := make([]state, n)
	have := make([]bool, n)
	onWork := make([]bool, n)
	var work []int32
	push := func(i int32) {
		if !onWork[i] {
			onWork[i] = true
			work = append(work, i)
		}
	}
	seed := func(i int32, s state) {
		if i < 0 || int(i) >= n {
			return
		}
		in[i] = s
		have[i] = true
		push(i)
	}
	entrySt := v.entryState()
	stubSt := v.stubState()
	seed(0, entrySt)
	seed(prog.Entry, entrySt)
	for i := range prog.Code {
		if v.o2nDest[i] {
			seed(int32(i), stubSt)
		}
	}

	iters := 0
	sbuf := make([]int32, 0, 2)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		onWork[i] = false
		iters++
		out := v.transfer(in[i], &prog.Code[i], int(i))
		for _, s := range v.cfg.Succs(int(i), sbuf[:0]) {
			if s < 0 || int(s) >= n {
				continue
			}
			if v.o2nDest[s] {
				continue // pinned to the stub state
			}
			next := out
			if v.leaders[s] && v.o.Compat {
				// Compat mode mirrors the elder verifier: no facts
				// survive a block boundary (beyond the pinned ones).
				next = stubSt
			}
			if !have[s] {
				in[s] = next
				have[s] = true
				push(int32(s))
				continue
			}
			changed := false
			for r := range in[s] {
				j := join(in[s][r], next[r], v.leaders[s] && in[s][r].k == ival)
				if j != in[s][r] {
					in[s][r] = j
					changed = true
				}
			}
			if changed {
				push(int32(s))
			}
		}
	}

	// Verification pass: discharge every obligation from the fixpoint
	// entry states.
	var out []sfi.Violation
	bad := func(i int, k sfi.Kind, why string) {
		out = append(out, sfi.Violation{Index: i, Inst: prog.Code[i], Kind: k, Why: why})
	}
	blocks := 0
	for i := range prog.Code {
		if v.leaders[i] {
			blocks++
		}
		st := &in[i]
		code := &prog.Code[i]
		v.checkReservedWrite(st, code, i, bad)
		if code.Op.IsStore() || code.MemDst {
			if v.storeOK(st, code) {
				if v.st != nil {
					v.st.Stores++
				}
			} else {
				bad(i, sfi.KindStore, "store address not provable on all paths")
			}
		}
		if code.Op == target.Jr || code.Op == target.Jalr {
			if v.indirectOK(st, code) {
				if v.st != nil {
					v.st.Indirects++
				}
			} else {
				bad(i, sfi.KindIndirect, "indirect target not provable on all paths")
			}
		}
	}
	if v.st != nil {
		v.st.Blocks = blocks
		v.st.Iterations = iters
	}
	return out
}

// entryState holds at the program's entry: nothing known except the
// runtime-maintained stack pointer.
func (v *verifier) entryState() state {
	var s state
	if v.sp != target.NoReg {
		s.set(v.sp, spRelative(0, 0))
	}
	return s
}

// scanStub walks the straight-line prefix at the entry point, tracking
// constants, to learn which dedicated registers provably hold their
// pinned values before any module code runs. The reserved-write rule
// keeps them there for the rest of the program, making these global
// facts.
func (v *verifier) scanStub() {
	v.estab = map[target.Reg]bool{}
	st := v.entryState()
	v.stubEnd = int(v.prog.Entry)
	for i := int(v.prog.Entry); i >= 0 && i < len(v.prog.Code); i++ {
		in := &v.prog.Code[i]
		if in.Op.IsBranch() || in.Op.IsJump() ||
			in.Op == target.Syscall || in.Op == target.Break || in.Op == target.Halt {
			v.stubEnd = i
			return
		}
		st = v.transfer(st, in, i)
		if exp, ok := v.expected[in.Rd]; ok {
			f := st.get(in.Rd)
			v.estab[in.Rd] = f.k == konst && f.lo == int64(exp)
		}
		v.stubEnd = i + 1
	}
}

// stubState is the entry state of every indirect-branch destination
// and exception handler: the stub-established dedicated constants
// (write-protected, hence global), the stack pointer, top elsewhere.
// In Compat mode only the global pointer keeps a value fact — the
// elder verifier uses the other dedicated registers by name only, and
// the classifier must match its accept-set exactly.
func (v *verifier) stubState() state {
	s := v.entryState()
	for r, exp := range v.expected {
		if !v.estab[r] {
			continue
		}
		if v.o.Compat && r != v.m.GP {
			continue
		}
		s.set(r, cst(exp))
	}
	return s
}

func (v *verifier) maskOK() bool { return v.m.SFIMask != target.NoReg && v.estab[v.m.SFIMask] }
func (v *verifier) baseOK() bool { return v.m.SFIBase != target.NoReg && v.estab[v.m.SFIBase] }
func (v *verifier) codeOK() bool { return v.m.CodeMask != target.NoReg && v.estab[v.m.CodeMask] }
func (v *verifier) gpOK() bool {
	return v.m.GP != target.NoReg && v.p.GPValue != 0 && v.estab[v.m.GP]
}
