package absint

import (
	"omniware/internal/sfi"
	"omniware/internal/target"
)

// transfer computes the state after executing in from the state before
// it. Every rule mirrors exactly what the simulator computes for the
// same opcode; anything not modeled clobbers the destination to top.
// In Compat mode only the elder verifier's rule shapes produce facts.
func (v *verifier) transfer(st state, in *target.Inst, i int) state {
	if in.Op.IsStore() || in.MemDst {
		return st // stores write no registers
	}
	if in.Op == target.Syscall {
		// A syscall may rewrite any syscall-visible OmniVM register
		// image. The dedicated SFI registers are not images, so their
		// facts survive.
		for _, r := range v.m.OmniInt {
			if r != target.NoReg {
				st.set(r, fact{})
			}
		}
		return st
	}
	rd := in.Rd
	if rd == target.NoReg {
		return st
	}
	if in.MemSrc {
		st.set(rd, fact{})
		return st
	}
	a := st.get(in.Rs1)
	b := st.get(in.Rs2)
	compat := v.o.Compat
	var f fact
	switch in.Op {
	case target.Nop, target.Cmp, target.CmpI, target.CmpUI, target.Fcmp:
		return st

	case target.Lui:
		f = cst(uint32(in.Imm) << 16)

	case target.MovI:
		f = cst(uint32(in.Imm))

	case target.Mov:
		f = a
		if compat && a.k != konst {
			f = fact{} // the elder verifier copies constants only
		}

	case target.AddI, target.Lea:
		f = v.addImm(a, rd, in)

	case target.OrI:
		f = v.orImm(a, rd, in)

	case target.AndI:
		f = v.andImm(a, rd, in)

	case target.And:
		f = v.andReg(a, b, rd, in)

	case target.Or:
		f = v.orReg(a, b, rd, in)

	case target.Jal, target.Jalr:
		// The link value is a constant: the simulator writes the
		// immediate (the OmniVM return address) to the link register.
		f = cst(uint32(in.Imm))

	default:
		f = fact{}
	}
	st.set(rd, f)
	return st
}

// addImm models rd = rs1 + imm (AddI/Lea). Constants fold with exact
// uint32 wraparound; intervals and sp-relative displacements shift (a
// negative lower bound is allowed — the sum un-wraps when the value is
// later used in address arithmetic, which the store rules bound).
func (v *verifier) addImm(a fact, rd target.Reg, in *target.Inst) fact {
	imm := int64(in.Imm)
	if a.k == konst {
		return cst(uint32(a.lo) + uint32(in.Imm))
	}
	if v.o.Compat {
		if rd == in.Rs1 && imm == 0 {
			return a // identity: the value is unchanged
		}
		// Mirror the elder verifier's single guard fold on the sandbox
		// register: and-masked [0,M] or rebased [B,B+M] shapes shift at
		// most once within the guard zone (a zero displacement is a
		// no-op and does not consume the fold).
		g := int64(v.p.GuardZone)
		if rd == v.m.SFIAddr && in.Rs1 == v.m.SFIAddr && imm >= -g && imm <= g &&
			(v.cleanMask(a) || v.cleanBased(a)) {
			return interval(a.lo+imm, a.hi+imm)
		}
		return fact{}
	}
	switch a.k {
	case ival:
		return interval(a.lo+imm, a.hi+imm)
	case spRel:
		return spRelative(a.lo+imm, a.hi+imm)
	}
	return fact{}
}

// orImm models rd = rs1 | uint32(imm).
func (v *verifier) orImm(a fact, rd target.Reg, in *target.Inst) fact {
	c := int64(uint32(in.Imm))
	if a.k == konst {
		if v.o.Compat && rd != in.Rs1 {
			return fact{} // elder constant tracking needs rd == rs1
		}
		return cst(uint32(a.lo) | uint32(in.Imm))
	}
	if v.o.Compat {
		// x86 rebase: or SFIAddr, DataBase on a cleanly masked value.
		if v.m.Arch == target.X86 && rd == v.m.SFIAddr && in.Rs1 == v.m.SFIAddr &&
			uint32(in.Imm) == v.p.DataBase && v.cleanMask(a) {
			return interval(int64(v.p.DataBase), int64(v.p.DataBase)+int64(v.p.DataMask))
		}
		return fact{}
	}
	// or(x, c) ∈ [max(lo, c), hi+c] for non-negative x: the or cannot
	// clear bits of either operand and cannot exceed their sum.
	if a.k == ival && a.lo >= 0 {
		return interval(max64(a.lo, c), a.hi+c)
	}
	return fact{}
}

// andImm models rd = rs1 & uint32(imm).
func (v *verifier) andImm(a fact, rd target.Reg, in *target.Inst) fact {
	// Exact folds (mirrored by the elder verifier's constant tracker):
	// and x, 0 is 0 whatever x holds.
	if in.Imm == 0 {
		return cst(0)
	}
	if a.k == konst {
		return cst(uint32(a.lo) & uint32(in.Imm))
	}
	if v.o.Compat {
		// The elder verifier recognizes the and-immediate masks on x86
		// only (register-form masks elsewhere).
		if v.m.Arch == target.X86 && rd == v.m.SFIAddr {
			if uint32(in.Imm) == v.p.DataMask {
				return interval(0, int64(v.p.DataMask))
			}
			if in.Imm >= 0 && int64(in.Imm) < int64(len(v.prog.OmniToNative)) {
				return interval(0, int64(in.Imm))
			}
		}
		return fact{}
	}
	// and(x, c) ≤ min(x, c) and never negative.
	ub := int64(-1)
	if in.Imm >= 0 {
		ub = int64(in.Imm)
	}
	if (a.k == ival || a.k == konst) && a.lo >= 0 && (ub < 0 || a.hi < ub) {
		ub = a.hi
	}
	if ub >= 0 {
		return interval(0, ub)
	}
	return fact{}
}

// andReg models rd = rs1 & rs2.
func (v *verifier) andReg(a, b fact, rd target.Reg, in *target.Inst) fact {
	if v.o.Compat {
		if v.m.Arch != target.X86 && rd == v.m.SFIAddr {
			if in.Rs2 == v.m.SFIMask && v.maskOK() {
				return interval(0, int64(v.p.DataMask))
			}
			if in.Rs2 == v.m.CodeMask && v.codeOK() {
				return interval(0, int64(len(v.prog.OmniToNative)-1))
			}
		}
		return fact{}
	}
	if a.k == konst && b.k == konst {
		return cst(uint32(a.lo) & uint32(b.lo))
	}
	ub := int64(-1)
	for _, f := range [2]fact{a, b} {
		if (f.k == konst || f.k == ival) && f.lo >= 0 && (ub < 0 || f.hi < ub) {
			ub = f.hi
		}
	}
	if ub >= 0 {
		return interval(0, ub)
	}
	return fact{}
}

// orReg models rd = rs1 | rs2.
func (v *verifier) orReg(a, b fact, rd target.Reg, in *target.Inst) fact {
	if v.o.Compat {
		if v.m.Arch != target.X86 && rd == v.m.SFIAddr && in.Rs1 == v.m.SFIAddr &&
			in.Rs2 == v.m.SFIBase && v.baseOK() && v.cleanMask(a) {
			return interval(int64(v.p.DataBase), int64(v.p.DataBase)+int64(v.p.DataMask))
		}
		return fact{}
	}
	if a.k == konst && b.k == konst {
		return cst(uint32(a.lo) | uint32(b.lo))
	}
	// One constant operand, one bounded non-negative operand.
	if a.k == konst {
		a, b = b, a
	}
	if b.k == konst && (a.k == ival || a.k == konst) && a.lo >= 0 {
		return interval(max64(a.lo, b.lo), a.hi+b.hi)
	}
	return fact{}
}

// cleanMask reports the exact and-masked shape [0, DataMask].
func (v *verifier) cleanMask(f fact) bool {
	return f.k == ival && f.lo == 0 && f.hi == int64(v.p.DataMask)
}

// cleanBased reports the exact rebased shape [DataBase, DataBase+DataMask].
func (v *verifier) cleanBased(f fact) bool {
	return f.k == ival && f.lo == int64(v.p.DataBase) && f.hi == int64(v.p.DataBase)+int64(v.p.DataMask)
}

// ---------------------------------------------------------------------
// Obligations.

// storeOK discharges one store obligation from the facts holding on
// every path reaching it.
func (v *verifier) storeOK(st *state, in *target.Inst) bool {
	p := v.p
	g := int64(p.GuardZone)
	B := int64(p.DataBase)
	M := int64(p.DataMask)
	base := in.Rs1
	if in.MemDst {
		base = target.NoReg // address is the immediate
	}
	if base == target.NoReg {
		a := int64(uint32(in.Imm))
		return a >= B && a <= B+M
	}
	if in.Indexed {
		// address = rs1 + rs2 (the simulator ignores Imm here).
		bf, xf := st.get(base), st.get(in.Rs2)
		if v.o.Compat {
			// Segment base + masked (possibly one-fold-guarded) index.
			return base == v.m.SFIBase && v.baseOK() && in.Rs2 == v.m.SFIAddr &&
				xf.k == ival && xf.hi-xf.lo == M && xf.lo >= -g && xf.lo <= g
		}
		lo, hi, ok := numRange(bf, xf)
		return ok && lo >= B-g && hi <= B+M+g
	}
	imm := int64(in.Imm)
	// Stack-relative by name: the stack pointer is runtime-maintained
	// inside the segment (shared assumption with the elder verifier).
	if base == v.sp && imm >= -g && imm <= g {
		return true
	}
	f := st.get(base)
	switch f.k {
	case konst:
		// An exactly-known address is contained anywhere in the window
		// (mirrors the elder verifier's constant rule).
		a := int64(uint32(f.lo) + uint32(in.Imm))
		return a >= B-g && a <= B+M+g
	case ival:
		if v.o.Compat {
			if base != v.m.SFIAddr {
				return false
			}
			if v.cleanBased(f) {
				return imm >= -g && imm <= g
			}
			// Guard already folded: no further displacement.
			return imm == 0 && f.lo >= B-g && f.hi <= B+M+g
		}
		return f.lo+imm >= B-g && f.hi+imm <= B+M+g
	case spRel:
		if v.o.Compat {
			return false
		}
		return f.lo+imm >= -g && f.hi+imm <= g
	}
	return false
}

// indirectOK discharges one indirect-branch obligation: the target
// (an OmniVM code address) must be provably below the omni-to-native
// map length, which is what the branch indexes.
func (v *verifier) indirectOK(st *state, in *target.Inst) bool {
	f := st.get(in.Rs1)
	nmap := int64(len(v.prog.OmniToNative))
	switch f.k {
	case konst:
		return f.lo < nmap
	case ival:
		if v.o.Compat && in.Rs1 != v.m.SFIAddr {
			return false
		}
		return f.lo >= 0 && f.hi < nmap
	}
	return false
}

// checkReservedWrite enforces the write-protection of the dedicated
// registers: only a constant idiom producing exactly the pinned value
// (or the lui upper half inside the entry stub, where the completing
// ori follows before any transfer) may touch them.
func (v *verifier) checkReservedWrite(st *state, in *target.Inst, i int, bad func(int, sfi.Kind, string)) {
	if in.Rd == target.NoReg || in.Op.IsStore() || in.MemDst {
		return
	}
	exp, res := v.expected[in.Rd]
	if !res {
		return
	}
	ok := false
	switch in.Op {
	case target.Lui:
		val := uint32(in.Imm) << 16
		inStub := i >= int(v.prog.Entry) && i < v.stubEnd
		ok = val == exp || (inStub && val == exp&0xffff0000)
	case target.MovI:
		ok = uint32(in.Imm) == exp
	case target.OrI:
		f := st.get(in.Rs1)
		ok = in.Rd == in.Rs1 && f.k == konst && uint32(f.lo)|uint32(in.Imm) == exp
	}
	if !ok {
		bad(i, sfi.KindReserved, "dedicated register not provably preserved")
	}
}

// numRange extracts a plain (non-sp-relative) numeric range from two
// facts and sums them modulo 2^32: when the whole range wraps (a
// constant that went through a below-zero guard fold summed with the
// segment base — found by the exhaustive enumerator as a lost-dominance
// case), it is shifted back exactly. A range that only straddles the
// wrap point stays unnormalized and fails the window check, which is
// the sound direction.
func numRange(a, b fact) (lo, hi int64, ok bool) {
	num := func(f fact) (int64, int64, bool) {
		if f.k == konst || f.k == ival {
			return f.lo, f.hi, true
		}
		return 0, 0, false
	}
	al, ah, ok1 := num(a)
	bl, bh, ok2 := num(b)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	lo, hi = al+bl, ah+bh
	if lo >= 1<<32 {
		lo -= 1 << 32
		hi -= 1 << 32
	} else if hi < 0 {
		lo += 1 << 32
		hi += 1 << 32
	}
	return lo, hi, true
}
