package absint_test

import (
	"strings"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/sfi"
	"omniware/internal/sfi/absint"
	"omniware/internal/target"
	"omniware/internal/translate"
)

var verifierPrograms = []string{
	`
int g[100];
struct s { int a; char b; double d; } sv;
int main(void) {
	int i;
	int *p = g;
	for (i = 0; i < 100; i++) g[i] = i;
	for (i = 0; i < 100; i += 2) p[i] = -i;
	sv.a = 1; sv.b = 'x'; sv.d = 2.5;
	char *hp = _sbrk(64);
	for (i = 0; i < 64; i++) hp[i] = (char)i;
	return g[50] + (int)sv.b;
}`,
	`
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int (*f)(int) = fib;
int main(void) { return f(10); }`,
}

// Every program the translator emits with SFI must pass the abstract
// interpreter — in both modes — on every machine, and the stats must
// account for every obligation the program contains.
func TestTranslatorOutputVerifies(t *testing.T) {
	for pi, src := range verifierPrograms {
		mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range target.Machines() {
			for _, hoist := range []bool{false, true} {
				h, err := core.NewHost(mod, core.RunConfig{})
				if err != nil {
					t.Fatal(err)
				}
				opt := translate.Paper(true)
				opt.SFIHoist = hoist
				prog, err := h.Translate(m, opt)
				if err != nil {
					t.Fatal(err)
				}
				pol := sfi.PolicyFor(m, h.SegInfo())
				var st absint.Stats
				if vs := absint.VerifyOpts(prog, pol, absint.Options{}, &st); len(vs) != 0 {
					for _, v := range vs {
						t.Errorf("prog %d %s hoist=%v: %s", pi, m.Name, hoist, v)
					}
					continue
				}
				if vs := absint.VerifyOpts(prog, pol, absint.Options{Compat: true}, nil); len(vs) != 0 {
					for _, v := range vs {
						t.Errorf("prog %d %s hoist=%v compat: %s", pi, m.Name, hoist, v)
					}
				}
				want := sfi.Survey(prog)
				if st.Stores != want.Stores || st.Indirects != want.Indirects {
					t.Errorf("prog %d %s hoist=%v: stats %d/%d obligations, survey says %d/%d",
						pi, m.Name, hoist, st.Stores, st.Indirects, want.Stores, want.Indirects)
				}
				if st.Blocks == 0 || st.Iterations == 0 {
					t.Errorf("prog %d %s hoist=%v: empty analysis stats %+v", pi, m.Name, hoist, st)
				}
			}
		}
	}
}

// Without SFI the same programs must not verify.
func TestUnsandboxedCodeFailsVerification(t *testing.T) {
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: verifierPrograms[0]}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range target.Machines() {
		h, err := core.NewHost(mod, core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := h.Translate(m, translate.Paper(false))
		if err != nil {
			t.Fatal(err)
		}
		if err := absint.Check(prog, m, h.SegInfo()); err == nil {
			t.Errorf("%s: unsandboxed program passed the abstract interpreter", m.Name)
		} else if !strings.Contains(err.Error(), "absint:") {
			t.Errorf("%s: error does not carry the absint prefix: %v", m.Name, err)
		}
	}
}

// The one documented precision difference between the verifiers: a
// diamond that sandboxes the address in BOTH arms and stores after the
// join. The elder verifier forgets everything at the block boundary and
// rejects; the abstract interpreter joins the two sandboxed states and
// accepts; Compat mode reproduces the elder's verdict; and the executor
// confirms the accept is sound.
func TestJoinPrecisionKnownDifference(t *testing.T) {
	for _, m := range target.Machines() {
		if m.Arch == target.X86 {
			continue // built from the register-form idiom below
		}
		th := harnessFor(t, m)
		prog := diamondProgram(th)
		checkVs := sfi.Verify(prog, th.pol)
		if len(checkVs) == 0 {
			t.Errorf("%s: sfi.Check accepted the cross-block diamond (expected its block reset to reject)", m.Name)
		}
		if vs := absint.Verify(prog, th.pol); len(vs) != 0 {
			t.Errorf("%s: full absint rejected the diamond its joins should prove: %v", m.Name, vs)
		}
		if vs := absint.VerifyOpts(prog, th.pol, absint.Options{Compat: true}, nil); len(vs) == 0 {
			t.Errorf("%s: compat mode accepted what sfi.Check rejects — classifier broken", m.Name)
		}
		if esc := th.contained(prog); len(esc) != 0 {
			t.Errorf("%s: the diamond escaped at runtime: %v", m.Name, esc)
		}
	}
}

// diamondProgram builds: branch to one of two arms, each arm masks and
// rebases the sandbox register, both fall into a store block that is a
// branch target (hence a leader where sfi.Check resets facts).
func diamondProgram(th *tharness) *target.Program {
	m, p := th.m, th.pol
	no := target.NoReg
	A := m.SFIAddr
	R := m.OmniInt[2]
	var code []target.Inst
	emit := func(in target.Inst) int32 {
		code = append(code, in)
		return int32(len(code) - 1)
	}
	pad := func() {
		if m.HasDelaySlot {
			emit(target.Inst{Op: target.Nop, Rd: no, Rs1: no, Rs2: no})
		}
	}
	// Stub.
	loadConst := func(rd target.Reg, val uint32) {
		if rd == no {
			return
		}
		emit(target.Inst{Op: target.Lui, Rd: rd, Rs1: no, Rs2: no, Imm: int32(val >> 16)})
		if lo := val & 0xffff; lo != 0 {
			emit(target.Inst{Op: target.OrI, Rd: rd, Rs1: rd, Rs2: no, Imm: int32(lo)})
		}
	}
	const nOmni = 2
	loadConst(m.SFIMask, p.DataMask)
	loadConst(m.SFIBase, p.DataBase)
	loadConst(m.CodeMask, nOmni-1)
	loadConst(m.GP, p.GPValue)
	jEntry := emit(target.Inst{Op: target.J, Rd: no, Rs1: no, Rs2: no})
	pad()

	entry := int32(len(code))
	code[jEntry].Target = entry
	// if (R == 0) goto armB;
	b := emit(target.Inst{Op: target.Beqz, Rd: no, Rs1: R, Rs2: no})
	pad()
	// armA: mask + rebase, jump to join
	emit(target.Inst{Op: target.And, Rd: A, Rs1: R, Rs2: m.SFIMask})
	emit(target.Inst{Op: target.Or, Rd: A, Rs1: A, Rs2: m.SFIBase})
	j := emit(target.Inst{Op: target.J, Rd: no, Rs1: no, Rs2: no})
	pad()
	// armB: the same sandbox, different arm
	armB := int32(len(code))
	code[b].Target = armB
	emit(target.Inst{Op: target.And, Rd: A, Rs1: R, Rs2: m.SFIMask})
	emit(target.Inst{Op: target.Or, Rd: A, Rs1: A, Rs2: m.SFIBase})
	// join: a branch target, so the elder verifier resets facts here
	join := int32(len(code))
	code[j].Target = join
	emit(target.Inst{Op: target.Sw, Rd: R, Rs1: A, Rs2: no, Imm: 0})
	emit(target.Inst{Op: target.Halt, Rd: no, Rs1: no, Rs2: no})
	trap := emit(target.Inst{Op: target.Break, Rd: no, Rs1: no, Rs2: no})
	return &target.Program{
		Arch:         m.Arch,
		Code:         code,
		Entry:        0,
		OmniToNative: []int32{trap, trap},
	}
}

// Check's error message must carry the per-kind violation totals.
func TestCheckErrorReportsPerKindTotals(t *testing.T) {
	th := harnessFor(t, target.Machines()[0])
	// Three violating stores and one violating indirect branch.
	no := target.NoReg
	R := th.m.OmniInt[2]
	seq := []synthInst{
		{in: target.Inst{Op: target.Sw, Rd: R, Rs1: R, Rs2: no, Imm: 0}},
		{in: target.Inst{Op: target.Sw, Rd: R, Rs1: R, Rs2: no, Imm: 4}},
		{in: target.Inst{Op: target.Jr, Rd: no, Rs1: R, Rs2: no}},
	}
	prog := buildSynth(th, seq)
	err := sfi.Check(prog, th.m, th.host.SegInfo())
	if err == nil {
		t.Fatal("violating program passed sfi.Check")
	}
	for _, want := range []string{"2 store", "1 indirect"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("sfi.Check error %q does not carry per-kind total %q", err, want)
		}
	}
	if _, err := absint.CheckStats(prog, th.m, th.host.SegInfo()); err == nil {
		t.Fatal("violating program passed absint.Check")
	}
}
