// Package sfi implements the software-fault-isolation policy checker:
// an independent verifier that inspects translated native code and
// proves that every store and indirect branch is contained in the
// module's segments. The translator is trusted to *produce* safe code;
// this verifier means it does not have to be trusted to be correct —
// the same separation the original SFI work used between the
// sandboxing tool and its verifier.
package sfi

import (
	"fmt"

	"omniware/internal/target"
	"omniware/internal/translate"
)

// Policy describes the containment the verifier checks.
type Policy struct {
	Machine  *target.Machine
	DataBase uint32
	DataMask uint32
	RegSave  uint32 // register-save area (absolute stores there are runtime-owned)
	GPValue  uint32 // global-pointer value held in Machine.GP (0 if unused)
	// GuardZone bounds the displacement allowed on a sandboxed or
	// stack-relative access.
	GuardZone int32
}

// PolicyFor derives the verifier policy for a program translated for m
// against the segment description si — the canonical way to go from
// the translator's view of a module to the verifier's.
func PolicyFor(m *target.Machine, si translate.SegInfo) Policy {
	return Policy{
		Machine:  m,
		DataBase: si.DataBase,
		DataMask: si.DataMask,
		RegSave:  si.RegSave,
		GPValue:  si.GPValue,
	}
}

// Stats counts the proof obligations one verification pass
// discharged, plus the sandboxing instructions the translator emitted
// to make them dischargeable — what the omnitrace verify span
// reports.
type Stats struct {
	Stores     int // store instructions proven contained
	Indirects  int // indirect branches proven contained
	SandboxOps int // static instructions attributed to SFI (CatSFI)
}

// Survey counts prog's proof obligations without verifying them.
func Survey(prog *target.Program) Stats {
	var st Stats
	for i := range prog.Code {
		in := &prog.Code[i]
		if in.Op.IsStore() || in.MemDst {
			st.Stores++
		}
		if in.Op == target.Jr || in.Op == target.Jalr {
			st.Indirects++
		}
		if in.Cat == target.CatSFI {
			st.SandboxOps++
		}
	}
	return st
}

// CheckStats is Check plus the obligation counts — the counts are
// valid even when verification fails (they describe the program, not
// the proof).
func CheckStats(prog *target.Program, m *target.Machine, si translate.SegInfo) (Stats, error) {
	return Survey(prog), Check(prog, m, si)
}

// Check is the exported admission entry point used by the translation
// cache: it verifies prog against PolicyFor(m, si) and reports failure
// as an error naming the first violations. A nil return means every
// store and indirect branch in prog is provably contained.
func Check(prog *target.Program, m *target.Machine, si translate.SegInfo) error {
	vs := Verify(prog, PolicyFor(m, si))
	if len(vs) == 0 {
		return nil
	}
	const show = 3
	msg := fmt.Sprintf("sfi: %d violation(s)", len(vs))
	for i, v := range vs {
		if i == show {
			msg += "; ..."
			break
		}
		msg += "; " + v.String()
	}
	return fmt.Errorf("%s", msg)
}

// Violation describes one unsafe instruction.
type Violation struct {
	Index int
	Inst  target.Inst
	Why   string
}

func (v Violation) String() string {
	return fmt.Sprintf("inst %d: %s — %s", v.Index, v.Inst, v.Why)
}

// Verify scans prog and returns all store/indirect-branch instructions
// that are not provably contained. A nil result means the program
// satisfies the SFI policy.
//
// The proof rules mirror the translator's sandboxing idioms:
//
//   - a store through the stack pointer with a displacement within the
//     guard zone is safe (sp stays inside the segment by construction);
//   - a store to an absolute address inside the data segment is safe;
//   - a store through the dedicated sandbox register is safe when the
//     most recent write to that register (on every straight-line path,
//     approximated block-locally) was a masking operation;
//   - on PPC/SPARC, an indexed store off the segment-base register
//     whose index was just masked is safe;
//   - an indirect branch through the sandbox register is safe when the
//     register was just masked with the code mask.
func Verify(prog *target.Program, p Policy) []Violation {
	if p.GuardZone == 0 {
		p.GuardZone = 4096
	}
	m := p.Machine
	var out []Violation
	bad := func(i int, in target.Inst, why string) {
		out = append(out, Violation{Index: i, Inst: in, Why: why})
	}

	// sandboxed tracks whether the dedicated register currently holds a
	// data-masked (or code-masked) value. Reset at labels (any
	// instruction that is a branch target) because the verifier only
	// reasons block-locally.
	leaders := make([]bool, len(prog.Code))
	for _, in := range prog.Code {
		if in.Op.IsBranch() || in.Op == target.J || in.Op == target.Jal {
			if in.Target >= 0 && int(in.Target) < len(leaders) {
				leaders[in.Target] = true
			}
		}
	}

	dataSafe := false // SFIAddr holds a data-sandboxed value
	codeSafe := false // SFIAddr holds a code-sandboxed value

	// Block-local constant tracking: registers holding values built by
	// lui/ori/movi sequences (used by absolute global stores that fall
	// outside the immediate range and were verified at translation
	// time).
	kc := map[target.Reg]uint32{}

	isDataMaskOp := func(in *target.Inst) bool {
		if in.Rd != m.SFIAddr {
			return false
		}
		switch m.Arch {
		case target.X86:
			// and reg, DataMask (immediate form); the or with the base
			// follows and keeps the property.
			return (in.Op == target.AndI && uint32(in.Imm) == p.DataMask) ||
				(in.Op == target.OrI && uint32(in.Imm) == p.DataBase && dataSafe)
		default:
			return in.Op == target.And && in.Rs2 == m.SFIMask ||
				(in.Op == target.Or && in.Rs2 == m.SFIBase && dataSafe) ||
				// Folding a guard-zone displacement into a masked value
				// keeps it within the guard of the segment.
				(in.Op == target.AddI && in.Rs1 == m.SFIAddr && dataSafe &&
					in.Imm >= -p.GuardZone && in.Imm <= p.GuardZone)
		}
	}
	isCodeMaskOp := func(in *target.Inst) bool {
		if in.Rd != m.SFIAddr {
			return false
		}
		if m.Arch == target.X86 {
			return in.Op == target.AndI && uint32(in.Imm) <= p.DataMask // code masks are small powers of two minus one
		}
		return in.Op == target.And && in.Rs2 == m.CodeMask
	}

	spReg := m.OmniInt[14]

	for i := range prog.Code {
		in := &prog.Code[i]
		if leaders[i] {
			dataSafe, codeSafe = false, false
			kc = map[target.Reg]uint32{}
		}

		// The dedicated registers must never be written by anything but
		// the masking idioms (and the entry stub, which precedes all
		// leaders and writes them with constants — tracked below).
		if in.Rd != target.NoReg && !in.Op.IsStore() && !in.MemDst {
			for _, r := range []target.Reg{m.SFIMask, m.SFIBase, m.CodeMask, m.GP} {
				if r != target.NoReg && in.Rd == r && !constWriter(in) {
					bad(i, *in, "reserved register overwritten")
				}
			}
		}

		if in.Op.IsStore() || in.MemDst {
			if !storeSafe(in, m, p, spReg, dataSafe, kc) {
				bad(i, *in, "store not provably inside the data segment")
			}
		}
		if in.Op == target.Jr || in.Op == target.Jalr {
			// Returns and calls through the sandbox register only.
			if !(in.Rs1 == m.SFIAddr && codeSafe) {
				bad(i, *in, "indirect branch through unsandboxed register")
			}
		}

		// Constant tracking.
		if in.Rd != target.NoReg && !in.Op.IsStore() && !in.MemDst {
			switch in.Op {
			case target.Lui:
				kc[in.Rd] = uint32(in.Imm) << 16
			case target.MovI:
				kc[in.Rd] = uint32(in.Imm)
			case target.OrI:
				if v, ok := kc[in.Rs1]; ok && in.Rd == in.Rs1 {
					kc[in.Rd] = v | uint32(in.Imm)
				} else {
					delete(kc, in.Rd)
				}
			default:
				delete(kc, in.Rd)
			}
		}

		// Track the sandbox register.
		wrote := in.Rd == m.SFIAddr && !in.Op.IsStore() && !in.MemDst && in.Rd != target.NoReg
		switch {
		case isDataMaskOp(in):
			// The x86 sequence needs and-then-or; And alone marks the
			// masked-but-unbased state, which the Or upgrade keeps.
			if m.Arch == target.X86 && in.Op == target.AndI {
				dataSafe = true
				codeSafe = true // small mask also bounds a code index
			} else {
				dataSafe = true
				codeSafe = false
			}
		case isCodeMaskOp(in):
			codeSafe = true
			dataSafe = false
		case wrote:
			dataSafe, codeSafe = false, false
		}
	}
	return out
}

func storeSafe(in *target.Inst, m *target.Machine, p Policy, spReg target.Reg, dataSafe bool, kc map[target.Reg]uint32) bool {
	inSeg := func(addr uint32) bool {
		return addr >= p.DataBase && addr <= p.DataBase+p.DataMask
	}
	// Absolute store (no base register): must land in the data segment
	// (the register-save area is inside it).
	base := in.Rs1
	if in.MemDst {
		base = target.NoReg // address is the immediate
	}
	if base == target.NoReg {
		return inSeg(uint32(in.Imm))
	}
	if in.Indexed {
		// PPC/SPARC indexed store off the segment base with a masked
		// index is the only sanctioned indexed form.
		return base == m.SFIBase && in.Rs2 == m.SFIAddr && dataSafe
	}
	// Stack-relative with a guarded displacement.
	if base == spReg && in.Imm >= -p.GuardZone && in.Imm <= p.GuardZone {
		return true
	}
	// Through the sandboxed register.
	if base == m.SFIAddr && dataSafe && in.Imm >= -p.GuardZone && in.Imm <= p.GuardZone {
		return true
	}
	// Through the global pointer: gp sits a fixed offset into the
	// segment and the immediate field is bounded by the architecture.
	if base == m.GP && p.GPValue != 0 && inSeg(uint32(int64(p.GPValue)+int64(in.Imm))) {
		return true
	}
	// Through a register holding a verified constant (lui/ori absolute
	// addressing of globals).
	if v, ok := kc[base]; ok && inSeg(uint32(int64(v)+int64(in.Imm))) {
		return true
	}
	return false
}

// constWriter reports whether in writes a plain constant (the entry
// stub's way of initializing the dedicated registers).
func constWriter(in *target.Inst) bool {
	switch in.Op {
	case target.Lui, target.MovI:
		return true
	case target.OrI:
		return in.Rd == in.Rs1
	}
	return false
}
