// Package sfi implements the software-fault-isolation policy checker:
// an independent verifier that inspects translated native code and
// proves that every store and indirect branch is contained in the
// module's segments. The translator is trusted to *produce* safe code;
// this verifier means it does not have to be trusted to be correct —
// the same separation the original SFI work used between the
// sandboxing tool and its verifier.
//
// A second verifier with an independent structure (abstract
// interpretation over a real control-flow graph) lives in the absint
// subpackage; the two are raced differentially under fuzzing and
// exhaustive small-model enumeration so a blind spot in one is caught
// by the other.
package sfi

import (
	"fmt"

	"omniware/internal/target"
	"omniware/internal/translate"
)

// Policy describes the containment the verifier checks.
type Policy struct {
	Machine  *target.Machine
	DataBase uint32
	DataMask uint32
	RegSave  uint32 // register-save area (absolute stores there are runtime-owned)
	GPValue  uint32 // global-pointer value held in Machine.GP (0 if unused)
	// GuardZone bounds the displacement allowed on a sandboxed or
	// stack-relative access.
	GuardZone int32
}

// PolicyFor derives the verifier policy for a program translated for m
// against the segment description si — the canonical way to go from
// the translator's view of a module to the verifier's.
func PolicyFor(m *target.Machine, si translate.SegInfo) Policy {
	return Policy{
		Machine:  m,
		DataBase: si.DataBase,
		DataMask: si.DataMask,
		RegSave:  si.RegSave,
		GPValue:  si.GPValue,
	}
}

// Stats counts the proof obligations one verification pass
// discharged, plus the sandboxing instructions the translator emitted
// to make them dischargeable — what the omnitrace verify span
// reports.
type Stats struct {
	Stores     int // store instructions proven contained
	Indirects  int // indirect branches proven contained
	SandboxOps int // static instructions attributed to SFI (CatSFI)
}

// Survey counts prog's proof obligations without verifying them.
func Survey(prog *target.Program) Stats {
	var st Stats
	for i := range prog.Code {
		in := &prog.Code[i]
		if in.Op.IsStore() || in.MemDst {
			st.Stores++
		}
		if in.Op == target.Jr || in.Op == target.Jalr {
			st.Indirects++
		}
		if in.Cat == target.CatSFI {
			st.SandboxOps++
		}
	}
	return st
}

// CheckStats is Check plus the obligation counts — the counts are
// valid even when verification fails (they describe the program, not
// the proof).
func CheckStats(prog *target.Program, m *target.Machine, si translate.SegInfo) (Stats, error) {
	return Survey(prog), Check(prog, m, si)
}

// Check is the exported admission entry point used by the translation
// cache: it verifies prog against PolicyFor(m, si) and reports failure
// as an error with per-kind violation totals, naming the first few
// violations. A nil return means every store and indirect branch in
// prog is provably contained.
func Check(prog *target.Program, m *target.Machine, si translate.SegInfo) error {
	vs := Verify(prog, PolicyFor(m, si))
	if len(vs) == 0 {
		return nil
	}
	var stores, indirects, reserved int
	for _, v := range vs {
		switch v.Kind {
		case KindStore:
			stores++
		case KindIndirect:
			indirects++
		case KindReserved:
			reserved++
		}
	}
	const show = 3
	msg := fmt.Sprintf("sfi: %d violation(s) (%d store, %d indirect, %d reserved-register)",
		len(vs), stores, indirects, reserved)
	for i, v := range vs {
		if i == show {
			msg += "; ..."
			break
		}
		msg += "; " + v.String()
	}
	return fmt.Errorf("%s", msg)
}

// Kind classifies a violation for the per-kind totals Check reports.
type Kind uint8

const (
	KindStore    Kind = iota // store not provably contained
	KindIndirect             // indirect branch not provably contained
	KindReserved             // dedicated register illegally overwritten
)

func (k Kind) String() string {
	switch k {
	case KindStore:
		return "store"
	case KindIndirect:
		return "indirect"
	case KindReserved:
		return "reserved-register"
	}
	return fmt.Sprintf("kind%d", int(k))
}

// Violation describes one unsafe instruction.
type Violation struct {
	Index int
	Inst  target.Inst
	Kind  Kind
	Why   string
}

func (v Violation) String() string {
	return fmt.Sprintf("inst %d: %s — %s", v.Index, v.Inst, v.Why)
}

// Verify scans prog and returns all store/indirect-branch instructions
// that are not provably contained. A nil result means the program
// satisfies the SFI policy.
//
// The proof rules mirror the translator's sandboxing idioms:
//
//   - a store through the stack pointer with a displacement within the
//     guard zone is safe (sp stays inside the segment by construction);
//   - a store to an absolute address inside the data segment is safe;
//   - a store through the dedicated sandbox register is safe when the
//     most recent write to that register (on every straight-line path,
//     approximated block-locally) was a masking operation;
//   - on PPC/SPARC, an indexed store off the segment-base register
//     whose index was just masked is safe;
//   - an indirect branch through the sandbox register is safe when the
//     register was just masked with the code mask, or through any
//     register holding a tracked constant below the code-map size;
//   - the dedicated registers (masks, segment base, global pointer)
//     may only ever be written with their expected constants, and the
//     by-name rules above engage only after the entry stub provably
//     establishes those constants.
//
// Fact boundaries: any instruction control can enter other than by
// falling through — a direct branch/jump target or any entry of the
// omni-to-native map (indirect branches and exception delivery land
// only on those) — starts a fresh block with no inherited facts.
func Verify(prog *target.Program, p Policy) []Violation {
	if p.GuardZone == 0 {
		p.GuardZone = 4096
	}
	m := p.Machine
	var out []Violation
	bad := func(i int, in target.Inst, k Kind, why string) {
		out = append(out, Violation{Index: i, Inst: in, Kind: k, Why: why})
	}

	leaders := make([]bool, len(prog.Code))
	for _, in := range prog.Code {
		if in.Op.IsBranch() || in.Op == target.J || in.Op == target.Jal {
			if in.Target >= 0 && int(in.Target) < len(leaders) {
				leaders[in.Target] = true
			}
		}
	}
	for _, v := range prog.OmniToNative {
		if v >= 0 && int(v) < len(leaders) {
			leaders[v] = true
		}
	}

	// Expected constants for the dedicated registers. Writes anywhere
	// must produce exactly these values (or, inside the entry stub, the
	// lui upper half on the way to them): trusting the register *name*
	// without pinning its *value* would let a module load a junk mask
	// and then "sandbox" with it.
	expected := map[target.Reg]uint32{}
	addExp := func(r target.Reg, v uint32) {
		if r != target.NoReg {
			expected[r] = v
		}
	}
	addExp(m.SFIMask, p.DataMask)
	addExp(m.SFIBase, p.DataBase)
	if len(prog.OmniToNative) > 0 {
		addExp(m.CodeMask, uint32(len(prog.OmniToNative)-1))
	} else {
		addExp(m.CodeMask, 0)
	}
	addExp(m.GP, p.GPValue)

	// Scan the straight-line prefix at the entry point (the stub) with
	// constant tracking to learn which dedicated registers provably
	// hold their expected constants before any module code runs. The
	// write-protection rule below then keeps them there for the whole
	// program, so these are global facts.
	established := map[target.Reg]bool{}
	stubEnd := int(prog.Entry)
	{
		kc := map[target.Reg]uint32{}
		for i := int(prog.Entry); i >= 0 && i < len(prog.Code); i++ {
			in := &prog.Code[i]
			if in.Op.IsBranch() || in.Op.IsJump() ||
				in.Op == target.Syscall || in.Op == target.Break || in.Op == target.Halt {
				stubEnd = i
				break
			}
			kcStep(kc, in)
			if exp, res := expected[in.Rd]; res {
				established[in.Rd] = kc[in.Rd] == exp
			}
			stubEnd = i + 1
		}
	}
	maskOK := m.SFIMask != target.NoReg && established[m.SFIMask]
	baseOK := m.SFIBase != target.NoReg && established[m.SFIBase]
	codeOK := m.CodeMask != target.NoReg && established[m.CodeMask]
	gpOK := m.GP != target.NoReg && p.GPValue != 0 && established[m.GP]

	// The sandbox register's abstract value. The masked and based
	// states are kept separate — a masked-but-unrebased value is an
	// offset in [0, DataMask], which is NOT a safe store address until
	// the or with the segment base — and a guard-zone displacement may
	// be folded in at most once on either side (the G states), so
	// displacements cannot stack beyond the guard.
	const (
		sbNone    = iota
		sbMasked  // SFIAddr ∈ [0, DataMask]
		sbMaskedG // SFIAddr ∈ [-G, DataMask+G] (guard fold used)
		sbBased   // SFIAddr ∈ [DataBase, DataBase+DataMask]
		sbBasedG  // SFIAddr ∈ [DataBase-G, DataBase+DataMask+G]
	)
	sb := sbNone
	codeSafe := false // SFIAddr holds a code-sandboxed value

	// Block-local constant tracking: registers holding values built by
	// lui/ori/movi/addi/mov sequences (used by absolute global stores
	// that fall outside the immediate range and were verified at
	// translation time, and by call link values).
	kc := map[target.Reg]uint32{}

	// isMaskOp: and with the data mask, starting a sandbox sequence.
	isMaskOp := func(in *target.Inst) bool {
		if in.Rd != m.SFIAddr {
			return false
		}
		if m.Arch == target.X86 {
			return in.Op == target.AndI && uint32(in.Imm) == p.DataMask
		}
		return in.Op == target.And && in.Rs2 == m.SFIMask && maskOK
	}
	// isBaseOp: or with the segment base, upgrading a masked offset to
	// an in-segment address.
	isBaseOp := func(in *target.Inst) bool {
		if in.Rd != m.SFIAddr {
			return false
		}
		if m.Arch == target.X86 {
			return in.Op == target.OrI && in.Rs1 == m.SFIAddr && uint32(in.Imm) == p.DataBase
		}
		return in.Op == target.Or && in.Rs1 == m.SFIAddr && in.Rs2 == m.SFIBase && baseOK
	}
	// isGuardFold: folding a guard-zone displacement into the sandbox
	// register (PPC/SPARC fold the store displacement before the
	// indexed store).
	// A zero displacement is a no-op and does not consume the single
	// allowed fold.
	isGuardFold := func(in *target.Inst) bool {
		return in.Rd == m.SFIAddr && in.Op == target.AddI && in.Rs1 == m.SFIAddr &&
			in.Imm != 0 && in.Imm >= -p.GuardZone && in.Imm <= p.GuardZone
	}
	// x86 has no dedicated code-mask register: the and-immediate bounds
	// the index iff the immediate is below the code-map size (the map
	// is what an indirect branch indexes, so any smaller mask is sound).
	x86CodeBound := func(in *target.Inst) bool {
		return in.Op == target.AndI && in.Imm >= 0 && int64(in.Imm) < int64(len(prog.OmniToNative))
	}
	isCodeMaskOp := func(in *target.Inst) bool {
		if in.Rd != m.SFIAddr {
			return false
		}
		if m.Arch == target.X86 {
			return x86CodeBound(in)
		}
		return in.Op == target.And && in.Rs2 == m.CodeMask && codeOK
	}

	spReg := m.OmniInt[14]

	inSeg := func(addr uint32) bool {
		return addr >= p.DataBase && addr <= p.DataBase+p.DataMask
	}
	// inWindow is the containment window: the segment plus its guard
	// zones. A store with an exactly-known address is contained there
	// even when it misses the segment proper — the same guarantee the
	// sandboxed-register rules give, which matters when a register is
	// both constant-known and sandbox-shaped.
	inWindow := func(a int64) bool {
		return a >= int64(p.DataBase)-int64(p.GuardZone) &&
			a <= int64(p.DataBase)+int64(p.DataMask)+int64(p.GuardZone)
	}
	storeSafe := func(in *target.Inst) bool {
		// Absolute store (no base register): must land in the data
		// segment (the register-save area is inside it).
		base := in.Rs1
		if in.MemDst {
			base = target.NoReg // address is the immediate
		}
		if base == target.NoReg {
			return inSeg(uint32(in.Imm))
		}
		if in.Indexed {
			// PPC/SPARC indexed store off the segment base with a masked
			// (possibly guard-folded) index is the only sanctioned
			// indexed form. The simulator ignores Imm on indexed forms.
			return base == m.SFIBase && baseOK && in.Rs2 == m.SFIAddr &&
				(sb == sbMasked || sb == sbMaskedG)
		}
		// Stack-relative with a guarded displacement.
		if base == spReg && in.Imm >= -p.GuardZone && in.Imm <= p.GuardZone {
			return true
		}
		// Through the sandboxed register: a masked-and-rebased value
		// plus at most one guard-zone displacement (folded or in the
		// store itself, never both).
		if base == m.SFIAddr && sb == sbBased && in.Imm >= -p.GuardZone && in.Imm <= p.GuardZone {
			return true
		}
		if base == m.SFIAddr && sb == sbBasedG && in.Imm == 0 {
			return true
		}
		// Through the global pointer: gp sits a fixed offset into the
		// segment and the immediate field is bounded by the architecture.
		if base == m.GP && gpOK && inWindow(int64(uint32(p.GPValue)+uint32(in.Imm))) {
			return true
		}
		// Through a register holding a verified constant (lui/ori
		// absolute addressing of globals).
		if v, ok := kc[base]; ok && inWindow(int64(v+uint32(in.Imm))) {
			return true
		}
		return false
	}

	for i := range prog.Code {
		in := &prog.Code[i]
		if leaders[i] {
			sb, codeSafe = sbNone, false
			kc = map[target.Reg]uint32{}
		}

		// The dedicated registers must never be written by anything but
		// a constant idiom producing exactly the expected value (the lui
		// upper half is additionally allowed inside the entry stub,
		// where the completing ori follows before any transfer).
		if in.Rd != target.NoReg && !in.Op.IsStore() && !in.MemDst {
			if exp, res := expected[in.Rd]; res {
				inStub := i >= int(prog.Entry) && i < stubEnd
				if !constWriter(in) || !expectedWrite(kc, in, exp, inStub) {
					bad(i, *in, KindReserved, "reserved register overwritten")
				}
			}
		}

		if in.Op.IsStore() || in.MemDst {
			if !storeSafe(in) {
				bad(i, *in, KindStore, "store not provably inside the data segment")
			}
		}
		if in.Op == target.Jr || in.Op == target.Jalr {
			// Returns and calls through the sandbox register, or through
			// a register holding a tracked constant below the code-map
			// size (the map bounds every indirect transfer).
			v, known := kc[in.Rs1]
			constSafe := known && int64(v) < int64(len(prog.OmniToNative))
			if !(in.Rs1 == m.SFIAddr && codeSafe) && !constSafe {
				bad(i, *in, KindIndirect, "indirect branch through unsandboxed register")
			}
		}

		// A syscall may rewrite any syscall-visible OmniVM register
		// image, so constant facts about those die here. The dedicated
		// SFI registers are not images, so the sandbox state survives.
		if in.Op == target.Syscall {
			for _, r := range m.OmniInt {
				if r != target.NoReg {
					delete(kc, r)
				}
			}
		}

		kcStep(kc, in)

		// Track the sandbox register.
		wrote := in.Rd == m.SFIAddr && !in.Op.IsStore() && !in.MemDst && in.Rd != target.NoReg
		switch {
		case isMaskOp(in):
			sb = sbMasked
			// On x86 the same and-immediate bounds a code index only
			// when the immediate is below the code-map size.
			codeSafe = m.Arch == target.X86 && x86CodeBound(in)
		case isBaseOp(in):
			if sb == sbMasked {
				sb = sbBased
			} else {
				sb = sbNone
			}
			codeSafe = false
		case isGuardFold(in):
			switch sb {
			case sbMasked:
				sb = sbMaskedG
			case sbBased:
				sb = sbBasedG
			default:
				sb = sbNone
			}
			codeSafe = false
		case isCodeMaskOp(in):
			codeSafe = true
			sb = sbNone
		case in.Op == target.AddI && in.Rd == m.SFIAddr && in.Rs1 == m.SFIAddr && in.Imm == 0:
			// Identity: the value is unchanged, so every fact survives.
		case wrote:
			sb, codeSafe = sbNone, false
		}
	}
	return out
}

// kcStep updates block-local constant knowledge for one instruction.
// Only value-exact transfers are tracked — every rule here mirrors
// precisely what the simulator computes for the same opcode.
func kcStep(kc map[target.Reg]uint32, in *target.Inst) {
	if in.Rd == target.NoReg || in.Op.IsStore() || in.MemDst {
		return
	}
	if in.MemSrc {
		delete(kc, in.Rd)
		return
	}
	switch in.Op {
	case target.Lui:
		kc[in.Rd] = uint32(in.Imm) << 16
	case target.MovI:
		kc[in.Rd] = uint32(in.Imm)
	case target.OrI:
		if v, ok := kc[in.Rs1]; ok && in.Rd == in.Rs1 {
			kc[in.Rd] = v | uint32(in.Imm)
		} else {
			delete(kc, in.Rd)
		}
	case target.AddI, target.Lea:
		if v, ok := kc[in.Rs1]; ok {
			kc[in.Rd] = v + uint32(in.Imm)
		} else {
			delete(kc, in.Rd)
		}
	case target.AndI:
		// and x, 0 is 0 no matter what x holds — found by the
		// differential fuzzer as a disagreement with the abstract
		// interpreter, which folds it.
		if in.Imm == 0 {
			kc[in.Rd] = 0
		} else if v, ok := kc[in.Rs1]; ok {
			kc[in.Rd] = v & uint32(in.Imm)
		} else {
			delete(kc, in.Rd)
		}
	case target.Mov:
		if v, ok := kc[in.Rs1]; ok {
			kc[in.Rd] = v
		} else {
			delete(kc, in.Rd)
		}
	case target.Jal, target.Jalr:
		// The link value is a constant: the simulator writes the
		// immediate field (the OmniVM return address) to the link
		// register.
		kc[in.Rd] = uint32(in.Imm)
	default:
		delete(kc, in.Rd)
	}
}

// constWriter reports whether in writes a plain constant (the entry
// stub's way of initializing the dedicated registers).
func constWriter(in *target.Inst) bool {
	switch in.Op {
	case target.Lui, target.MovI:
		return true
	case target.OrI:
		return in.Rd == in.Rs1
	}
	return false
}

// expectedWrite reports whether a constWriter instruction leaves the
// dedicated register holding its expected constant exp. Inside the
// entry stub a lui of the upper half is also allowed (the completing
// ori follows before any control transfer, and the stub scan only
// marks the register established if it actually does).
func expectedWrite(kc map[target.Reg]uint32, in *target.Inst, exp uint32, inStub bool) bool {
	switch in.Op {
	case target.Lui:
		v := uint32(in.Imm) << 16
		return v == exp || (inStub && v == exp&0xffff0000)
	case target.MovI:
		return uint32(in.Imm) == exp
	case target.OrI:
		v, ok := kc[in.Rs1]
		return ok && in.Rd == in.Rs1 && v|uint32(in.Imm) == exp
	}
	return false
}
