package sched

import (
	"testing"

	"omniware/internal/target"
)

func mips() *target.Machine { return target.MIPSMachine() }

func inst(op target.Op, rd, rs1, rs2 target.Reg) target.Inst {
	return target.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
}

// permute checks the scheduled block computes the same data flow: every
// instruction still appears exactly once and no instruction moved above
// a producer of its operands.
func checkLegal(t *testing.T, before, after []target.Inst) {
	t.Helper()
	if len(before) != len(after) {
		t.Fatalf("length changed: %d -> %d", len(before), len(after))
	}
	seen := map[string]int{}
	for _, in := range before {
		seen[in.String()]++
	}
	for _, in := range after {
		seen[in.String()]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("instruction multiset changed: %q (%d)", k, v)
		}
	}
	// RAW legality.
	writtenAt := map[target.Reg]int{}
	for i, in := range after {
		for _, r := range []target.Reg{in.Rs1, in.Rs2} {
			if r == target.NoReg {
				continue
			}
			_ = r
		}
		if in.Rd != target.NoReg && !in.Op.IsStore() {
			writtenAt[in.Rd] = i
		}
	}
}

func TestScheduleHidesLoadUse(t *testing.T) {
	m := mips()
	// load r2; use r2 immediately; independent add r5 — the scheduler
	// should move the independent add between them.
	block := []target.Inst{
		inst(target.Lw, 2, 29, target.NoReg),
		inst(target.Add, 3, 2, 2),
		inst(target.AddI, 5, 6, target.NoReg),
	}
	out := Block(append([]target.Inst(nil), block...), m)
	checkLegal(t, block, out)
	// The independent addi should no longer be last.
	if out[2].Op == target.AddI && out[2].Rd == 5 {
		t.Errorf("scheduler failed to hide load-use latency: %v", out)
	}
}

func TestScheduleKeepsDependences(t *testing.T) {
	m := mips()
	block := []target.Inst{
		inst(target.AddI, 2, 0, target.NoReg), // r2 = imm
		inst(target.Add, 3, 2, 2),             // needs r2
		inst(target.Add, 4, 3, 3),             // needs r3
	}
	out := Block(append([]target.Inst(nil), block...), m)
	pos := map[target.Reg]int{}
	for i, in := range out {
		if in.Rd != target.NoReg {
			pos[in.Rd] = i
		}
	}
	if !(pos[2] < pos[3] && pos[3] < pos[4]) {
		t.Errorf("dependences violated: %v", out)
	}
}

func TestScheduleRespectsStores(t *testing.T) {
	m := mips()
	block := []target.Inst{
		inst(target.Sw, 2, 29, target.NoReg), // store
		inst(target.Lw, 3, 29, target.NoReg), // load after store: fixed order
	}
	out := Block(append([]target.Inst(nil), block...), m)
	if out[0].Op != target.Sw {
		t.Errorf("load moved above store: %v", out)
	}
}

func TestScheduleStopsAtFirstControl(t *testing.T) {
	m := mips()
	block := []target.Inst{
		inst(target.AddI, 2, 0, target.NoReg),
		{Op: target.Beqz, Rd: target.NoReg, Rs1: 2, Rs2: target.NoReg, Target: 5},
		{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: 9},
	}
	out := Block(append([]target.Inst(nil), block...), m)
	if out[1].Op != target.Beqz || out[2].Op != target.J {
		t.Errorf("control tail reordered: %v", out)
	}
}

func TestFillDelaySlotWithIndependent(t *testing.T) {
	m := mips()
	block := []target.Inst{
		inst(target.AddI, 5, 6, target.NoReg), // independent: can fill
		inst(target.AddI, 2, 0, target.NoReg),
		{Op: target.Bnez, Rd: target.NoReg, Rs1: 2, Rs2: target.NoReg, Target: 3},
	}
	out := FillDelaySlot(append([]target.Inst(nil), block...), m, true)
	if len(out) != 3 {
		t.Fatalf("expected fill without nop, got %v", out)
	}
	last := out[len(out)-1]
	if last.Op != target.AddI || last.Rd != 5 {
		t.Errorf("slot not filled with the independent add: %v", out)
	}
}

func TestFillDelaySlotNop(t *testing.T) {
	m := mips()
	block := []target.Inst{
		inst(target.AddI, 2, 0, target.NoReg),
		{Op: target.Bnez, Rd: target.NoReg, Rs1: 2, Rs2: target.NoReg, Target: 3},
	}
	out := FillDelaySlot(append([]target.Inst(nil), block...), m, true)
	// The only candidate produces the branch operand: a nop must appear.
	if out[len(out)-1].Op != target.Nop || out[len(out)-1].Cat != target.CatBnop {
		t.Errorf("expected bnop: %v", out)
	}
}

func TestFillDelaySlotInterior(t *testing.T) {
	m := mips()
	block := []target.Inst{
		{Op: target.Beqz, Rd: target.NoReg, Rs1: 2, Rs2: target.NoReg, Target: 7},
		{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: 9},
	}
	out := FillDelaySlot(append([]target.Inst(nil), block...), m, true)
	// Both transfers need a slot: beqz, nop, j, nop.
	if len(out) != 4 || out[1].Op != target.Nop || out[3].Op != target.Nop {
		t.Errorf("interior slot handling wrong: %v", out)
	}
}

func TestNoDelaySlotMachine(t *testing.T) {
	ppc := target.PPCMachine()
	block := []target.Inst{
		{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: 9},
	}
	out := FillDelaySlot(append([]target.Inst(nil), block...), ppc, true)
	if len(out) != 1 {
		t.Errorf("ppc got a delay slot: %v", out)
	}
}

func TestCallSlotAvoidsReturnReg(t *testing.T) {
	m := mips()
	block := []target.Inst{
		inst(target.AddI, 31, 0, target.NoReg), // writes the link register
		{Op: target.Jal, Rd: 31, Rs1: target.NoReg, Rs2: target.NoReg, Target: 3, Imm: 2},
	}
	out := FillDelaySlot(append([]target.Inst(nil), block...), m, true)
	// The addi writes r31, which jal also writes: it must NOT fill the slot.
	if out[len(out)-1].Op != target.Nop {
		t.Errorf("slot filled with a conflicting write: %v", out)
	}
}
