// Package sched implements local (basic-block) list scheduling over
// target instructions, plus branch delay-slot filling for the
// delay-slot architectures. This is the translator optimization §4.2
// evaluates: it hides pipeline interlocks, and in SFI code it hides
// sandboxing instructions inside interlock cycles, which is why
// scheduling helps SFI code more than unprotected code.
package sched

import "omniware/internal/target"

// Block schedules the instructions of one basic block in place and
// returns the new ordering. The final instruction, if it is a control
// transfer, keeps its position. Memory operations keep their relative
// order with respect to stores; register dependences are honoured
// exactly.
func Block(insts []target.Inst, m *target.Machine) []target.Inst {
	n := len(insts)
	if n < 2 {
		return insts
	}
	// Schedule only the straight-line prefix: everything from the first
	// control transfer on keeps its order (a block may end with a
	// conditional branch followed by an unconditional jump).
	k := n
	for i := 0; i < n; i++ {
		op := insts[i].Op
		if op.IsBranch() || op.IsJump() || op == target.Syscall {
			k = i
			break
		}
	}
	body := insts[:k]
	tail := insts[k:]
	if len(body) < 2 {
		return insts
	}
	// The first control transfer may depend on body values (branch
	// operands); keep producers of its operands ordered naturally via
	// the dependence DAG — the tail is appended unchanged, so any body
	// instruction is still before it.
	term := tail

	deps := buildDeps(body, m)

	// Longest-path-to-exit priority.
	prio := make([]int, len(body))
	for i := len(body) - 1; i >= 0; i-- {
		lat := latOf(&body[i], m)
		p := lat
		for _, s := range deps.succs[i] {
			if prio[s]+lat > p {
				p = prio[s] + lat
			}
		}
		prio[i] = p
	}

	// Cycle-driven list scheduling: among the data-ready instructions,
	// prefer one whose operands are available this cycle (hiding
	// latencies), breaking ties by critical-path priority.
	indeg := make([]int, len(body))
	preds := make([][]int, len(body))
	for i := range body {
		for _, s := range deps.succs[i] {
			indeg[s]++
			preds[s] = append(preds[s], i)
		}
	}
	finish := make([]int, len(body)) // cycle the result becomes available
	scheduled := make([]target.Inst, 0, len(insts))
	done := make([]bool, len(body))
	clock := 0
	for len(scheduled) < len(body) {
		best, bestEst := -1, 0
		for i := range body {
			if done[i] || indeg[i] != 0 {
				continue
			}
			est := 0
			for _, p := range preds[i] {
				if finish[p] > est {
					est = finish[p]
				}
			}
			if est < clock {
				est = clock
			}
			better := best < 0 ||
				est < bestEst ||
				(est == bestEst && prio[i] > prio[best])
			if better {
				best, bestEst = i, est
			}
		}
		if best < 0 {
			// Cycle (cannot happen with a DAG); bail out conservatively.
			return insts
		}
		done[best] = true
		finish[best] = bestEst + latOf(&body[best], m)
		clock = bestEst + 1
		scheduled = append(scheduled, body[best])
		for _, s := range deps.succs[best] {
			indeg[s]--
		}
	}
	scheduled = append(scheduled, term...)
	return scheduled
}

// FillDelaySlot arranges delay slots on delay-slot machines. The final
// control transfer of the block gets the last independent instruction
// moved into its slot (or a nop); interior transfers (a conditional
// branch followed by its else-jump) always get an explicit nop.
func FillDelaySlot(insts []target.Inst, m *target.Machine, tryFill bool) []target.Inst {
	if !m.HasDelaySlot || len(insts) == 0 {
		return insts
	}
	isCtl := func(op target.Op) bool {
		return op.IsBranch() || op == target.J || op == target.Jal || op == target.Jr || op == target.Jalr
	}
	nopFor := func(src int32) target.Inst {
		return target.Inst{Op: target.Nop, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Cat: target.CatBnop, Src: src}
	}

	// Step 1: the final transfer, if any, gets a filled slot or a nop.
	finalHandled := false
	last := len(insts) - 1
	if isCtl(insts[last].Op) {
		t := insts[last]
		filled := false
		if tryFill {
			for i := last - 1; i >= 0; i-- {
				c := insts[i]
				if isCtl(c.Op) || c.Op == target.Syscall {
					break
				}
				if writesReg(&c, t.Rs1) || writesReg(&c, t.Rs2) {
					continue
				}
				if (t.Op == target.Jal || t.Op == target.Jalr) && t.Rd != target.NoReg {
					if writesReg(&c, t.Rd) || c.Rs1 == t.Rd || c.Rs2 == t.Rd ||
						(c.Op.IsStore() && c.Rd == t.Rd) {
						continue
					}
				}
				if (t.Op == target.Bcc || t.Op == target.FBcc) && setsFlags(&c) {
					continue
				}
				if !canDelay(insts[i+1:last], &c) {
					continue
				}
				out := make([]target.Inst, 0, len(insts))
				out = append(out, insts[:i]...)
				out = append(out, insts[i+1:last]...)
				out = append(out, t, c)
				insts = out
				filled = true
				break
			}
		}
		if !filled {
			insts = append(insts, nopFor(t.Src))
		}
		finalHandled = true
		last = len(insts) - 2 // position of the final transfer
	}

	// Step 2: every other transfer gets a nop slot.
	out := make([]target.Inst, 0, len(insts)+2)
	for i := 0; i < len(insts); i++ {
		out = append(out, insts[i])
		if isCtl(insts[i].Op) && !(finalHandled && i == last) {
			out = append(out, nopFor(insts[i].Src))
		}
	}
	return out
}

func canDelay(between []target.Inst, c *target.Inst) bool {
	for i := range between {
		b := &between[i]
		// b must not read or overwrite c's result.
		if c.Rd != target.NoReg && !c.Op.IsStore() {
			if b.Rs1 == c.Rd || b.Rs2 == c.Rd || (b.Op.IsStore() && b.Rd == c.Rd) {
				return false
			}
			if b.Rd == c.Rd {
				return false
			}
		}
		// c must not read anything b writes.
		if b.Rd != target.NoReg && !b.Op.IsStore() {
			if c.Rs1 == b.Rd || c.Rs2 == b.Rd || (c.Op.IsStore() && c.Rd == b.Rd) {
				return false
			}
		}
		// Memory ordering: don't move a memory op past another store.
		cMem := c.Op.IsLoad() || c.Op.IsStore() || c.MemSrc || c.MemDst
		if cMem && (b.Op.IsStore() || b.MemDst) {
			return false
		}
		if (c.Op.IsStore() || c.MemDst) && (b.Op.IsLoad() || b.MemSrc || b.MemDst) {
			return false
		}
	}
	return true
}

func writesReg(in *target.Inst, r target.Reg) bool {
	if r == target.NoReg {
		return false
	}
	return in.Rd == r && !in.Op.IsStore()
}

func setsFlags(in *target.Inst) bool {
	switch in.Op {
	case target.Cmp, target.CmpI, target.CmpUI, target.Fcmp:
		return true
	}
	return false
}

func latOf(in *target.Inst, m *target.Machine) int {
	if m.Latency == nil {
		return 1
	}
	return m.Latency(in.Op)
}

type depGraph struct {
	succs [][]int
}

// buildDeps constructs the dependence DAG of a straight-line body.
func buildDeps(body []target.Inst, m *target.Machine) *depGraph {
	g := &depGraph{succs: make([][]int, len(body))}
	lastWrite := map[target.Reg]int{}
	readersSince := map[target.Reg][]int{}
	lastStore := -1
	lastMems := []int{}
	lastFlagSet := -1
	flagReaders := []int{}
	barrier := -1

	edge := func(from, to int) {
		if from < 0 || from == to {
			return
		}
		g.succs[from] = append(g.succs[from], to)
	}

	for i := range body {
		in := &body[i]
		var reads []target.Reg
		if in.Rs1 != target.NoReg {
			reads = append(reads, in.Rs1)
		}
		if in.Rs2 != target.NoReg {
			reads = append(reads, in.Rs2)
		}
		var writes target.Reg = target.NoReg
		if in.Op.IsStore() {
			reads = append(reads, in.Rd)
		} else if in.Rd != target.NoReg {
			writes = in.Rd
		}
		// RAW
		for _, r := range reads {
			if w, ok := lastWrite[r]; ok {
				edge(w, i)
			}
		}
		// WAR and WAW
		if writes != target.NoReg {
			for _, rd := range readersSince[writes] {
				edge(rd, i)
			}
			if w, ok := lastWrite[writes]; ok {
				edge(w, i)
			}
			lastWrite[writes] = i
			readersSince[writes] = nil
		}
		for _, r := range reads {
			readersSince[r] = append(readersSince[r], i)
		}
		// Memory: stores order against all prior memory ops; loads order
		// against prior stores. MemDst forms both read and write memory.
		isMem := in.Op.IsLoad() || in.Op.IsStore() || in.MemSrc || in.MemDst
		if in.Op.IsStore() || in.MemDst {
			for _, mi := range lastMems {
				edge(mi, i)
			}
			edge(lastStore, i)
			lastStore = i
			lastMems = lastMems[:0]
		} else if isMem {
			edge(lastStore, i)
			lastMems = append(lastMems, i)
		}
		// Syscalls are full barriers: they read and write the OmniVM
		// register state (possibly in memory) and perform I/O.
		if in.Op == target.Syscall {
			for j := 0; j < i; j++ {
				edge(j, i)
			}
			barrier = i
		} else if barrier >= 0 {
			edge(barrier, i)
		}
		// Flags.
		if setsFlags(in) {
			for _, r := range flagReaders {
				edge(r, i)
			}
			edge(lastFlagSet, i)
			lastFlagSet = i
			flagReaders = flagReaders[:0]
		}
		if in.Op == target.Bcc || in.Op == target.FBcc {
			edge(lastFlagSet, i)
			flagReaders = append(flagReaders, i)
		}
	}
	return g
}
