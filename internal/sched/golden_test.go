package sched

import (
	"fmt"
	"strings"
	"testing"

	"omniware/internal/target"
)

// key renders an instruction compactly for golden comparison: opcode
// plus destination (or branch shape), enough to pin the ordering
// without freezing every operand.
func key(in *target.Inst) string {
	switch {
	case in.Op == target.Nop:
		return "nop"
	case in.Op.IsBranch() || in.Op.IsJump():
		return in.Op.String()
	case in.Op.IsStore():
		return fmt.Sprintf("%s[r%d]", in.Op, in.Rd)
	default:
		return fmt.Sprintf("%s>r%d", in.Op, in.Rd)
	}
}

func keys(insts []target.Inst) string {
	parts := make([]string, len(insts))
	for i := range insts {
		parts[i] = key(&insts[i])
	}
	return strings.Join(parts, " ")
}

// Golden delay-slot orderings on the two delay-slot machines. The
// filler is deterministic, so the exact output sequence is the
// contract: which instruction lands in the slot, where nops are forced,
// and that interior transfers always get an explicit nop.
func TestDelaySlotGoldenOrderings(t *testing.T) {
	cases := []struct {
		name   string
		block  []target.Inst
		golden string
	}{
		{
			// The independent add moves into the slot.
			name: "independent-fills-slot",
			block: []target.Inst{
				inst(target.AddI, 5, 6, target.NoReg),
				inst(target.AddI, 2, 0, target.NoReg),
				{Op: target.Bnez, Rd: target.NoReg, Rs1: 2, Rs2: target.NoReg, Target: 3},
			},
			golden: "addi>r2 bnez addi>r5",
		},
		{
			// The only candidate produces the branch operand: forced nop.
			name: "operand-producer-forces-nop",
			block: []target.Inst{
				inst(target.AddI, 2, 0, target.NoReg),
				{Op: target.Bnez, Rd: target.NoReg, Rs1: 2, Rs2: target.NoReg, Target: 3},
			},
			golden: "addi>r2 bnez nop",
		},
		{
			// A store is a legal slot filler when nothing between it and
			// the branch conflicts.
			name: "store-fills-slot",
			block: []target.Inst{
				inst(target.AddI, 2, 0, target.NoReg),
				inst(target.Sw, 3, 29, target.NoReg),
				{Op: target.Bnez, Rd: target.NoReg, Rs1: 2, Rs2: target.NoReg, Target: 3},
			},
			golden: "addi>r2 bnez sw[r3]",
		},
		{
			// Interior transfer (conditional branch then else-jump): both
			// get slots, and the fill search never moves an instruction
			// across the interior transfer, so both slots hold nops.
			name: "interior-transfers-get-nops",
			block: []target.Inst{
				inst(target.AddI, 5, 6, target.NoReg),
				{Op: target.Beqz, Rd: target.NoReg, Rs1: 2, Rs2: target.NoReg, Target: 7},
				{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: 9},
			},
			golden: "addi>r5 beqz nop j nop",
		},
		{
			// The candidate writes the link register the call also
			// writes: it may not move into the slot.
			name: "call-link-conflict-forces-nop",
			block: []target.Inst{
				inst(target.AddI, 31, 0, target.NoReg),
				{Op: target.Jal, Rd: 31, Rs1: target.NoReg, Rs2: target.NoReg, Target: 3, Imm: 2},
			},
			golden: "addi>r31 jal nop",
		},
		{
			// A skipped conflicting candidate does not stop the search:
			// the earlier independent instruction still fills the slot.
			name: "search-skips-conflicting-candidate",
			block: []target.Inst{
				inst(target.AddI, 5, 6, target.NoReg),
				inst(target.AddI, 2, 0, target.NoReg),
				inst(target.Add, 3, 2, 2),
				{Op: target.Bnez, Rd: target.NoReg, Rs1: 3, Rs2: target.NoReg, Target: 3},
			},
			golden: "addi>r2 add>r3 bnez addi>r5",
		},
	}
	for _, m := range []*target.Machine{target.MIPSMachine(), target.SPARCMachine()} {
		for _, c := range cases {
			t.Run(m.Name+"/"+c.name, func(t *testing.T) {
				out := FillDelaySlot(append([]target.Inst(nil), c.block...), m, true)
				if got := keys(out); got != c.golden {
					t.Errorf("ordering:\n  got:  %s\n  want: %s", got, c.golden)
				}
			})
		}
	}
}

// blockCycles charges a straight-line block on a single-issue in-order
// pipeline under the machine's latency table: each instruction stalls
// until its operands are ready, then issues in one cycle. This is the
// cost model the scheduler optimizes against.
func blockCycles(insts []target.Inst, m *target.Machine) int {
	avail := map[target.Reg]int{}
	clock := 0
	for i := range insts {
		in := &insts[i]
		ready := clock
		use := func(r target.Reg) {
			if r != target.NoReg && avail[r] > ready {
				ready = avail[r]
			}
		}
		use(in.Rs1)
		use(in.Rs2)
		if in.Op.IsStore() {
			use(in.Rd)
		}
		clock = ready + 1
		if in.Rd != target.NoReg && !in.Op.IsStore() {
			avail[in.Rd] = ready + latOf(in, m)
		}
	}
	return clock
}

// Scheduling must never make a block slower under the cost model it
// optimizes for, and on the latency-hiding cases it must strictly win.
func TestScheduleCycleNonRegression(t *testing.T) {
	blocks := []struct {
		name       string
		insts      []target.Inst
		strictlyOn []string // machines where an improvement is required
	}{
		{
			// Two load-use pairs that interleave perfectly.
			name: "load-use-pairs",
			insts: []target.Inst{
				inst(target.Lw, 2, 29, target.NoReg),
				inst(target.Add, 3, 2, 2),
				inst(target.Lw, 4, 29, target.NoReg),
				inst(target.Add, 5, 4, 4),
			},
			strictlyOn: []string{"mips", "sparc", "ppc"},
		},
		{
			// A long-latency multiply whose consumer can sink below
			// independent work.
			name: "multiply-latency",
			insts: []target.Inst{
				inst(target.Mul, 2, 6, 7),
				inst(target.Add, 3, 2, 2),
				inst(target.AddI, 8, 9, target.NoReg),
				inst(target.AddI, 10, 11, target.NoReg),
				inst(target.AddI, 12, 11, target.NoReg),
			},
			strictlyOn: []string{"mips", "sparc", "ppc", "x86"},
		},
		{
			// FP pipeline: double multiply feeding an add, with integer
			// work available to hide the latency.
			name: "fp-chain",
			insts: []target.Inst{
				inst(target.FmulD, 50, 48, 49),
				inst(target.FaddD, 51, 50, 48),
				inst(target.AddI, 8, 9, target.NoReg),
				inst(target.AddI, 10, 9, target.NoReg),
			},
			strictlyOn: []string{"mips", "sparc", "ppc", "x86"},
		},
		{
			// A dependence chain with no slack: scheduling can do
			// nothing, and must not regress.
			name: "serial-chain",
			insts: []target.Inst{
				inst(target.AddI, 2, 0, target.NoReg),
				inst(target.Add, 3, 2, 2),
				inst(target.Add, 4, 3, 3),
				inst(target.Add, 5, 4, 4),
			},
		},
		{
			// Memory ordering constraints limit but do not prevent
			// reordering.
			name: "store-load-mix",
			insts: []target.Inst{
				inst(target.Lw, 2, 29, target.NoReg),
				inst(target.Add, 3, 2, 2),
				inst(target.Sw, 3, 29, target.NoReg),
				inst(target.AddI, 8, 9, target.NoReg),
			},
			strictlyOn: []string{"mips", "sparc", "ppc"},
		},
	}
	for _, m := range target.Machines() {
		for _, b := range blocks {
			t.Run(m.Name+"/"+b.name, func(t *testing.T) {
				before := blockCycles(b.insts, m)
				out := Block(append([]target.Inst(nil), b.insts...), m)
				checkLegal(t, b.insts, out)
				after := blockCycles(out, m)
				if after > before {
					t.Errorf("scheduling regressed: %d -> %d cycles\n  in:  %s\n  out: %s",
						before, after, keys(b.insts), keys(out))
				}
				for _, name := range b.strictlyOn {
					if name == m.Name && after >= before {
						t.Errorf("expected a strict improvement, got %d -> %d cycles\n  out: %s",
							before, after, keys(out))
					}
				}
			})
		}
	}
}
