// Package scope is omniscope: the cluster-wide observability substrate
// — cross-node trace propagation and fleet metrics aggregation.
//
// Propagation: every peer-to-peer HTTP call carries the originating
// request id (X-Omni-Request-Id, forwarded rather than re-minted) and a
// trace-parent header (X-Omni-Trace-Parent) naming the origin's trace.
// The serving side records its own span tree — cache tier probed,
// on-demand translation, verification — in its local trace ring under
// that parent, and returns the span subtree to the caller in a response
// header (X-Omni-Trace-Spans, base64url JSON, size-capped). The origin
// grafts the subtree into its own tree (trace.Span.AttachRemote), so
// GET /v1/trace/{id} on the origin shows one stitched cross-node tree
// with per-node annotations.
//
// Aggregation: GET /v1/cluster/metrics on any node fans out to the
// members with bounded timeouts and merges what comes back — counters
// sum, histograms add bucket-wise (trace.HistSnapshot.Add) with
// quantiles recomputed from the merged buckets, per-peer health merges
// by peer address, and the top-K slowest traces across the fleet are
// kept as exemplars. A node that fails to answer is reported by name
// with its error, never silently dropped from the denominator.
package scope

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"omniware/internal/serve/metrics"
	"omniware/internal/trace"
)

// TraceParentHeader carries the origin's trace context on peer-to-peer
// requests: "<traceID>;<requestID>". The serving node records its own
// spans under this parent so the two rings can be joined after the
// fact even if the response subtree is lost.
const TraceParentHeader = "X-Omni-Trace-Parent"

// TraceSpansHeader returns the serving node's span subtree for the
// request, base64url-encoded JSON of one trace.Span. Responses whose
// subtree would exceed MaxSpansHeaderBytes omit the header — stitching
// is best-effort decoration, never worth failing a fill over.
const TraceSpansHeader = "X-Omni-Trace-Spans"

// MaxSpansHeaderBytes caps the encoded span subtree: big enough for
// any real pipeline tree, small enough that a hostile peer cannot
// bloat responses or the origin's trace ring.
const MaxSpansHeaderBytes = 64 << 10

// Parent is the decoded trace-parent header.
type Parent struct {
	TraceID   string
	RequestID string
}

// EncodeParent renders the trace-parent header value. Empty if there
// is no trace to propagate.
func EncodeParent(traceID, requestID string) string {
	if traceID == "" && requestID == "" {
		return ""
	}
	return traceID + ";" + requestID
}

// ParseParent decodes a trace-parent header value; malformed or empty
// input yields the zero Parent (propagation is optional decoration).
func ParseParent(v string) Parent {
	if v == "" {
		return Parent{}
	}
	tid, rid, _ := strings.Cut(v, ";")
	return Parent{TraceID: tid, RequestID: rid}
}

// EncodeSpans renders a finished span subtree for the response header.
// Subtrees that encode beyond MaxSpansHeaderBytes are refused — the
// caller just omits the header.
func EncodeSpans(sp *trace.Span) (string, error) {
	if sp == nil {
		return "", fmt.Errorf("scope: nil span")
	}
	raw, err := json.Marshal(sp)
	if err != nil {
		return "", err
	}
	enc := base64.RawURLEncoding.EncodeToString(raw)
	if len(enc) > MaxSpansHeaderBytes {
		return "", fmt.Errorf("scope: span subtree %d bytes exceeds header cap", len(enc))
	}
	return enc, nil
}

// DecodeSpans parses a TraceSpansHeader value back into a span tree.
// The bytes came from a peer: size is checked before decode, and any
// failure returns nil with the error (callers treat a bad subtree as
// an absent one).
func DecodeSpans(v string) (*trace.Span, error) {
	if v == "" {
		return nil, fmt.Errorf("scope: empty spans header")
	}
	if len(v) > MaxSpansHeaderBytes {
		return nil, fmt.Errorf("scope: spans header %d bytes exceeds cap", len(v))
	}
	raw, err := base64.RawURLEncoding.DecodeString(v)
	if err != nil {
		return nil, err
	}
	var sp trace.Span
	if err := json.Unmarshal(raw, &sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Exemplar is one slow-trace summary. The JSON field names match
// netserve's TraceSummary so a node's /v1/trace/slow response decodes
// straight into it; Node is added by the aggregator.
type Exemplar struct {
	Node       string  `json:"node,omitempty"`
	ID         string  `json:"id"`
	Kind       string  `json:"kind"`
	Target     string  `json:"target,omitempty"`
	Status     string  `json:"status"`
	DurUs      int64   `json:"durUs"`
	Insts      uint64  `json:"insts"`
	SandboxPct float64 `json:"sandboxPct"`
}

// NodeReport is one member's contribution to a fleet aggregation: its
// full metrics snapshot and slow-trace exemplars, or the error that
// kept it out of the merge.
type NodeReport struct {
	Node    string            `json:"node"`
	Err     string            `json:"err,omitempty"`
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	Slow    []Exemplar        `json:"slow,omitempty"`
}

// Fleet is the /v1/cluster/metrics response: per-node reports plus the
// fleet-summed snapshot and the cross-fleet slow-trace exemplars.
type Fleet struct {
	Origin string            `json:"origin"` // the node that ran the fan-out
	Nodes  []NodeReport      `json:"nodes"`
	Fleet  *metrics.Snapshot `json:"fleet,omitempty"` // merged across answering nodes
	Slow   []Exemplar        `json:"slow,omitempty"`  // slowest first, capped
}

// DefaultSlowK caps the fleet exemplar list.
const DefaultSlowK = 16

// MergeFleet builds the fleet view from per-node reports: snapshots of
// every answering node merge via metrics.MergeSnapshots; exemplars are
// node-stamped, pooled, and the slowK slowest kept. Reports are not
// mutated; failed nodes stay in Nodes with their error.
func MergeFleet(origin string, reports []NodeReport, slowK int) Fleet {
	if slowK <= 0 {
		slowK = DefaultSlowK
	}
	out := Fleet{Origin: origin, Nodes: reports}
	var merged *metrics.Snapshot
	for _, nr := range reports {
		if nr.Err != "" || nr.Metrics == nil {
			continue
		}
		if merged == nil {
			m := *nr.Metrics
			merged = &m
		} else {
			m := metrics.MergeSnapshots(*merged, *nr.Metrics)
			merged = &m
		}
		for _, ex := range nr.Slow {
			ex.Node = nr.Node
			out.Slow = append(out.Slow, ex)
		}
	}
	out.Fleet = merged
	sort.SliceStable(out.Slow, func(i, j int) bool { return out.Slow[i].DurUs > out.Slow[j].DurUs })
	if len(out.Slow) > slowK {
		out.Slow = out.Slow[:slowK]
	}
	return out
}
