package scope

import (
	"strings"
	"testing"
	"time"

	"omniware/internal/serve/metrics"
	"omniware/internal/trace"
)

func TestParentRoundTrip(t *testing.T) {
	cases := []struct {
		tid, rid string
	}{
		{"exec-1-abc-mips", "req-42"},
		{"exec-1", ""},
		{"", "req-9"},
	}
	for _, c := range cases {
		v := EncodeParent(c.tid, c.rid)
		if v == "" {
			t.Fatalf("EncodeParent(%q, %q) empty", c.tid, c.rid)
		}
		p := ParseParent(v)
		if p.TraceID != c.tid || p.RequestID != c.rid {
			t.Errorf("round trip (%q, %q) -> %+v", c.tid, c.rid, p)
		}
	}
	if EncodeParent("", "") != "" {
		t.Error("nothing to propagate should encode empty")
	}
	// Malformed and empty values are decoration, never errors.
	if p := ParseParent(""); p != (Parent{}) {
		t.Errorf("empty header parsed to %+v", p)
	}
	if p := ParseParent("just-a-trace-id"); p.TraceID != "just-a-trace-id" || p.RequestID != "" {
		t.Errorf("no-separator header parsed to %+v", p)
	}
}

func TestSpansRoundTrip(t *testing.T) {
	tr := trace.New("peer-7", "peer_serve")
	tr.Root.Set("from", "http://origin:1")
	tr.Root.Child("cache").Set("result", "hit").End()
	tr.Root.Child("verify").End()
	tr.Finish("ok")

	enc, err := EncodeSpans(tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := DecodeSpans(enc)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "peer_serve" || len(sp.Children) != 2 {
		t.Fatalf("decoded tree lost shape: %+v", sp)
	}
	c := sp.Find("cache")
	if c == nil || len(c.Attrs) != 1 || c.Attrs[0].Val != "hit" {
		t.Fatalf("decoded tree lost attrs: %+v", c)
	}
	if c.DurNs != tr.Root.Children[0].DurNs {
		t.Errorf("duration changed across the wire: %d != %d", c.DurNs, tr.Root.Children[0].DurNs)
	}
}

// Stitching is best-effort decoration: oversized, empty, and corrupt
// header values are refused with an error, never a panic or a bogus
// tree.
func TestSpansRefusal(t *testing.T) {
	if _, err := EncodeSpans(nil); err == nil {
		t.Error("nil span encoded")
	}
	// A tree whose encoding exceeds the header cap is refused at encode
	// time (the server just omits the header).
	big := trace.New("big", "peer_serve")
	for i := 0; i < 4000; i++ {
		big.Root.Child("span-with-a-reasonably-long-name").Set("key", "value-padding-padding").End()
	}
	big.Finish("ok")
	if _, err := EncodeSpans(big.Root); err == nil {
		t.Error("oversized subtree encoded under the header cap")
	}
	if _, err := DecodeSpans(""); err == nil {
		t.Error("empty header decoded")
	}
	if _, err := DecodeSpans(strings.Repeat("A", MaxSpansHeaderBytes+1)); err == nil {
		t.Error("oversized header decoded")
	}
	if _, err := DecodeSpans("!!!not-base64!!!"); err == nil {
		t.Error("non-base64 header decoded")
	}
	if _, err := DecodeSpans("bm90LWpzb24"); err == nil { // "not-json"
		t.Error("non-JSON header decoded")
	}
}

func snapWith(jobs uint64, stage string, d time.Duration) *metrics.Snapshot {
	var h trace.Histogram
	h.Observe(d)
	hs := h.Snapshot()
	return &metrics.Snapshot{
		JobsRun: jobs,
		Stages: map[string]metrics.StageSnapshot{
			stage: {Count: hs.Count, Hist: hs},
		},
	}
}

func TestMergeFleet(t *testing.T) {
	reports := []NodeReport{
		{Node: "http://a:1", Metrics: snapWith(3, "execute", time.Millisecond),
			Slow: []Exemplar{{ID: "t-slow", DurUs: 900}, {ID: "t-mid", DurUs: 500}}},
		{Node: "http://b:1", Err: "context deadline exceeded"},
		{Node: "http://c:1", Metrics: snapWith(5, "execute", 2*time.Millisecond),
			Slow: []Exemplar{{ID: "t-slowest", DurUs: 1200}}},
	}
	f := MergeFleet("http://a:1", reports, 2)
	if f.Origin != "http://a:1" || len(f.Nodes) != 3 {
		t.Fatalf("fleet shape: %+v", f)
	}
	// The down node stays in the report with its error — never silently
	// dropped from the denominator.
	if f.Nodes[1].Err == "" {
		t.Error("failed node lost its error")
	}
	if f.Fleet == nil || f.Fleet.JobsRun != 8 {
		t.Fatalf("merged jobs_run = %+v, want 8", f.Fleet)
	}
	st := f.Fleet.Stages["execute"]
	if st.Hist.Count != 2 {
		t.Errorf("merged execute hist count %d, want 2", st.Hist.Count)
	}
	// Exemplars: node-stamped, slowest first, capped at slowK=2.
	if len(f.Slow) != 2 {
		t.Fatalf("exemplar cap ignored: %d retained", len(f.Slow))
	}
	if f.Slow[0].ID != "t-slowest" || f.Slow[0].Node != "http://c:1" {
		t.Errorf("Slow[0] = %+v, want t-slowest stamped with its node", f.Slow[0])
	}
	if f.Slow[1].ID != "t-slow" || f.Slow[1].Node != "http://a:1" {
		t.Errorf("Slow[1] = %+v", f.Slow[1])
	}
	// The input reports were not mutated by the stamping.
	if reports[0].Slow[0].Node != "" {
		t.Error("MergeFleet mutated the input exemplars")
	}

	// All nodes down: no merged snapshot, but every report survives.
	down := MergeFleet("x", []NodeReport{{Node: "a", Err: "boom"}}, 0)
	if down.Fleet != nil || len(down.Nodes) != 1 {
		t.Fatalf("all-down fleet: %+v", down)
	}
}
