package scope

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"omniware/internal/serve/metrics"
	"omniware/internal/trace"
)

// RenderTop draws one frame of the fleet dashboard (`omnictl top`) as
// plain text: fleet throughput, per-stage latency, per-target sandbox
// overhead, per-peer health, and the slowest stitched traces. When a
// previous frame is supplied the counters and quantiles are interval
// values (cur minus prev over dt — true interval quantiles from
// bucket-wise histogram subtraction); with no previous frame the
// process-lifetime totals are shown.
func RenderTop(cur, prev *Fleet, dt time.Duration) string {
	var b strings.Builder
	if cur == nil {
		return "omniscope: no fleet data\n"
	}
	up, down := 0, 0
	for _, nr := range cur.Nodes {
		if nr.Err == "" {
			up++
		} else {
			down++
		}
	}
	window := "lifetime"
	if prev != nil && dt > 0 {
		window = fmt.Sprintf("last %s", dt.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "omniscope  origin=%s  nodes=%d up", cur.Origin, up)
	if down > 0 {
		fmt.Fprintf(&b, " / %d down", down)
	}
	fmt.Fprintf(&b, "  window=%s\n", window)
	for _, nr := range cur.Nodes {
		if nr.Err != "" {
			fmt.Fprintf(&b, "  DOWN %s: %s\n", nr.Node, nr.Err)
		}
	}
	f := cur.Fleet
	if f == nil {
		b.WriteString("no answering nodes\n")
		return b.String()
	}
	var pf *metrics.Snapshot
	if prev != nil {
		pf = prev.Fleet
	}

	ran, failed, subs := f.JobsRun, f.JobsFailed, f.JobsSubmitted
	failovers := uint64(0)
	if f.Cluster != nil {
		failovers = f.Cluster.Failovers
	}
	if pf != nil {
		ran = sub64(f.JobsRun, pf.JobsRun)
		failed = sub64(f.JobsFailed, pf.JobsFailed)
		subs = sub64(f.JobsSubmitted, pf.JobsSubmitted)
		if f.Cluster != nil && pf.Cluster != nil {
			failovers = sub64(f.Cluster.Failovers, pf.Cluster.Failovers)
		}
	}
	rate := ""
	if pf != nil && dt > 0 {
		rate = fmt.Sprintf("  jobs/s=%.1f", float64(ran+failed)/dt.Seconds())
	}
	fmt.Fprintf(&b, "jobs submitted=%d run=%d failed=%d%s  queue=%d  failovers=%d  cache_hit_rate=%.2f\n",
		subs, ran, failed, rate, f.QueueDepth, failovers, f.HitRate())

	// Stage latency table, interval quantiles when a window exists.
	fmt.Fprintf(&b, "\n%-12s %8s %10s %10s %10s\n", "stage", "count", "p50", "p95", "p99")
	for _, name := range metrics.StageNames {
		st, ok := f.Stages[name]
		if !ok {
			continue
		}
		h := st.Hist
		if pf != nil {
			if pst, ok := pf.Stages[name]; ok {
				h = h.Sub(pst.Hist)
			}
		}
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %8d %10s %10s %10s\n",
			name, h.Count, roundDur(h.P50()), roundDur(h.P95()), roundDur(h.P99()))
	}

	// Per-target sandbox overhead: the fleet-wide live overhead table.
	fmt.Fprintf(&b, "\n%-8s %10s %14s %10s\n", "target", "jobs", "insts", "sandbox%")
	for _, ts := range f.Targets {
		if ts.Jobs == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %10d %14d %9.2f%%\n", ts.Target, ts.Jobs, ts.Insts, ts.SandboxPct)
	}

	if f.Cluster != nil && len(f.Cluster.Peers) > 0 {
		fmt.Fprintf(&b, "\n%-28s %6s %6s %6s %7s %10s\n", "peer (fleet-merged)", "hits", "quar", "errs", "pushes", "staleness")
		for _, p := range f.Cluster.Peers {
			stale := "never"
			if p.StalenessMs >= 0 {
				stale = (time.Duration(p.StalenessMs) * time.Millisecond).String()
			}
			fmt.Fprintf(&b, "%-28s %6d %6d %6d %7d %10s\n",
				p.Peer, p.Hits, p.Quarantines, p.Errors, p.Pushes, stale)
			if reasons := nonzeroReasons(p.QuarantinesByReason); reasons != "" {
				fmt.Fprintf(&b, "%-28s %s\n", "", reasons)
			}
		}
	}

	if len(cur.Slow) > 0 {
		b.WriteString("\nslow traces (fleet top-K)\n")
		for _, ex := range cur.Slow {
			fmt.Fprintf(&b, "  %-32s node=%-24s %10s  sandbox=%5.2f%%  %s\n",
				ex.ID, ex.Node, roundDur(time.Duration(ex.DurUs)*time.Microsecond), ex.SandboxPct, ex.Status)
		}
	}
	return b.String()
}

func sub64(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return 0
}

func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// nonzeroReasons renders the nonzero entries of a quarantine reason
// split as "reason=n" pairs, sorted, or "" when all zero.
func nonzeroReasons(m map[string]uint64) string {
	var parts []string
	for k, v := range m {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	sort.Strings(parts)
	return "quarantines: " + strings.Join(parts, " ")
}

// SandboxPctOfRemote sums the per-target sandbox percentage a remote
// subtree reports via span attributes, used by `omnictl trace` to
// annotate remote segments. Returns false when the subtree carries no
// attribution.
func SandboxPctOfRemote(sp *trace.Span) (float64, bool) {
	if sp == nil {
		return 0, false
	}
	var find func(*trace.Span) (float64, bool)
	find = func(s *trace.Span) (float64, bool) {
		for _, a := range s.Attrs {
			if a.Key == "sandbox_pct" {
				var v float64
				if _, err := fmt.Sscanf(a.Val, "%f", &v); err == nil {
					return v, true
				}
			}
		}
		for _, c := range s.Children {
			if v, ok := find(c); ok {
				return v, ok
			}
		}
		return 0, false
	}
	return find(sp)
}
