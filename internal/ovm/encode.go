package ovm

import (
	"encoding/binary"
	"fmt"
)

// Instruction words are encoded little-endian as:
//
//	byte 0      opcode
//	byte 1..3   rd, rs1, rs2
//	byte 4..7   imm  (int32)
//	byte 8..11  imm2 (int32)
//
// The fixed 12-byte width keeps the paper's guarantee that a memory
// access instruction carries a full 32-bit offset, so a translator never
// needs cross-instruction analysis to reconstruct an address.

// EncodeInst writes in into buf, which must be at least InstBytes long.
func EncodeInst(buf []byte, in Inst) {
	buf[0] = byte(in.Op)
	buf[1] = in.Rd
	buf[2] = in.Rs1
	buf[3] = in.Rs2
	binary.LittleEndian.PutUint32(buf[4:], uint32(in.Imm))
	binary.LittleEndian.PutUint32(buf[8:], uint32(in.Imm2))
}

// DecodeInst reads one instruction from buf.
func DecodeInst(buf []byte) (Inst, error) {
	if len(buf) < InstBytes {
		return Inst{}, fmt.Errorf("ovm: short instruction: %d bytes", len(buf))
	}
	in := Inst{
		Op:   Opcode(buf[0]),
		Rd:   buf[1],
		Rs1:  buf[2],
		Rs2:  buf[3],
		Imm:  int32(binary.LittleEndian.Uint32(buf[4:])),
		Imm2: int32(binary.LittleEndian.Uint32(buf[8:])),
	}
	if err := in.Validate(); err != nil {
		return Inst{}, fmt.Errorf("ovm: decode %v: %w", in.Op, err)
	}
	return in, nil
}

// EncodeText encodes a slice of instructions.
func EncodeText(insts []Inst) []byte {
	out := make([]byte, len(insts)*InstBytes)
	for i, in := range insts {
		EncodeInst(out[i*InstBytes:], in)
	}
	return out
}

// DecodeText decodes a text section into instructions.
func DecodeText(data []byte) ([]Inst, error) {
	if len(data)%InstBytes != 0 {
		return nil, fmt.Errorf("ovm: text size %d not a multiple of %d", len(data), InstBytes)
	}
	out := make([]Inst, len(data)/InstBytes)
	for i := range out {
		in, err := DecodeInst(data[i*InstBytes:])
		if err != nil {
			return nil, fmt.Errorf("ovm: instruction %d: %w", i, err)
		}
		out[i] = in
	}
	return out, nil
}
