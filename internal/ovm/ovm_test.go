package ovm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeTableComplete(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if op.Name() == "" {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if len(OpcodeByName) != NumOpcodes {
		t.Errorf("OpcodeByName has %d entries, want %d (duplicate mnemonic?)", len(OpcodeByName), NumOpcodes)
	}
}

func TestOpcodePredicatesConsistent(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%s is both load and store", op.Name())
		}
		if op.IsIndexed() && !op.IsLoad() && !op.IsStore() {
			t.Errorf("%s indexed but not a memory op", op.Name())
		}
		if (op.IsLoad() || op.IsStore()) && op.MemSize() == 0 {
			t.Errorf("%s memory op with no size", op.Name())
		}
		if op.MemSize() != 0 && !op.IsLoad() && !op.IsStore() {
			t.Errorf("%s has size but is not a memory op", op.Name())
		}
	}
}

func TestInstValidate(t *testing.T) {
	ok := Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid inst rejected: %v", err)
	}
	bad := Inst{Op: ADD, Rd: 16}
	if err := bad.Validate(); err == nil {
		t.Fatal("register 16 accepted")
	}
	undef := Inst{Op: Opcode(200)}
	if err := undef.Validate(); err == nil {
		t.Fatal("undefined opcode accepted")
	}
}

// randInst generates a random valid instruction.
func randInst(r *rand.Rand) Inst {
	for {
		in := Inst{
			Op:   Opcode(r.Intn(NumOpcodes)),
			Rd:   uint8(r.Intn(NumIntRegs)),
			Rs1:  uint8(r.Intn(NumIntRegs)),
			Rs2:  uint8(r.Intn(NumIntRegs)),
			Imm:  int32(r.Uint32()),
			Imm2: int32(r.Uint32()),
		}
		if in.Validate() == nil {
			return in
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		var buf [InstBytes]byte
		EncodeInst(buf[:], in)
		got, err := DecodeInst(buf[:])
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return got == in
	}
	// Pinned generator seed: quick's default Rand is time-seeded, and a
	// reproducible failure beats marginal extra coverage.
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInstShort(t *testing.T) {
	if _, err := DecodeInst(make([]byte, 5)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestEncodeDecodeTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	insts := make([]Inst, 100)
	for i := range insts {
		insts[i] = randInst(r)
	}
	data := EncodeText(insts)
	got, err := DecodeText(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("got %d instructions, want %d", len(got), len(insts))
	}
	for i := range got {
		if got[i] != insts[i] {
			t.Fatalf("inst %d: got %v want %v", i, got[i], insts[i])
		}
	}
	if _, err := DecodeText(data[:len(data)-1]); err == nil {
		t.Fatal("ragged text accepted")
	}
}

func TestObjectRoundTrip(t *testing.T) {
	o := &Object{
		Name:    "t.c",
		Text:    []Inst{{Op: LDI, Rd: 1, Imm: 42}, {Op: HALT}},
		Data:    []byte{1, 2, 3, 4},
		BSSSize: 128,
		Symbols: []Symbol{
			{Name: "main", Section: SecText, Value: 0, Global: true},
			{Name: "buf", Section: SecBSS, Value: 0},
		},
		TextRel:  []Reloc{{Offset: 0, Field: FieldImm, Kind: RelAbs, Symbol: "buf", Addend: 4}},
		DataRel:  []Reloc{{Offset: 0, Kind: RelCode, Symbol: "main"}},
		SrcLines: []int32{10, 11},
	}
	got, err := DecodeObject(o.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != o.Name || got.BSSSize != o.BSSSize {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Text) != 2 || got.Text[0].Imm != 42 {
		t.Errorf("text mismatch: %+v", got.Text)
	}
	if string(got.Data) != string(o.Data) {
		t.Errorf("data mismatch")
	}
	if len(got.Symbols) != 2 || got.Symbols[0].Name != "main" || !got.Symbols[0].Global {
		t.Errorf("symbols mismatch: %+v", got.Symbols)
	}
	if len(got.TextRel) != 1 || got.TextRel[0].Symbol != "buf" || got.TextRel[0].Addend != 4 {
		t.Errorf("text relocs mismatch: %+v", got.TextRel)
	}
	if len(got.DataRel) != 1 || got.DataRel[0].Kind != RelCode {
		t.Errorf("data relocs mismatch: %+v", got.DataRel)
	}
	if len(got.SrcLines) != 2 || got.SrcLines[1] != 11 {
		t.Errorf("srclines mismatch: %+v", got.SrcLines)
	}
}

func TestModuleRoundTrip(t *testing.T) {
	m := &Module{
		Text:     []Inst{{Op: LDI, Rd: 1, Imm: -7}, {Op: HALT}},
		Data:     []byte("hello"),
		BSSSize:  64,
		Entry:    0,
		DataBase: 0x20000000,
		Symbols:  []Symbol{{Name: "main", Section: SecText, Global: true}},
	}
	got, err := DecodeModule(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != 0 || got.DataBase != m.DataBase || got.BSSSize != 64 {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.DataEnd() != m.DataBase+5+64 {
		t.Errorf("DataEnd = %#x", got.DataEnd())
	}
}

func TestModuleBadEntry(t *testing.T) {
	m := &Module{Text: []Inst{{Op: HALT}}, Entry: 5}
	if _, err := DecodeModule(m.Encode()); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := DecodeObject([]byte("XXXX....")); err != ErrBadMagic {
		t.Errorf("object: got %v", err)
	}
	if _, err := DecodeModule([]byte("XXXX....")); err != ErrBadMagic {
		t.Errorf("module: got %v", err)
	}
}

func TestTruncatedObject(t *testing.T) {
	o := &Object{Name: "x", Text: []Inst{{Op: HALT}}}
	enc := o.Encode()
	for cut := 5; cut < len(enc); cut += 3 {
		if _, err := DecodeObject(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 14, Rs1: 14, Imm: -16}, "addi r14, r14, -16"},
		{Inst{Op: LDW, Rd: 5, Rs1: 14, Imm: 8}, "ldw r5, 8(r14)"},
		{Inst{Op: STW, Rd: 5, Rs1: 14, Imm: 8}, "stw r5, 8(r14)"},
		{Inst{Op: LDWX, Rd: 5, Rs1: 2, Rs2: 3}, "ldwx r5, (r2+r3)"},
		{Inst{Op: BEQI, Rs1: 1, Imm: 0, Imm2: 12}, "beqi r1, 0, 12"},
		{Inst{Op: FADDD, Rd: 1, Rs1: 2, Rs2: 3}, "faddd f1, f2, f3"},
		{Inst{Op: LDD, Rd: 2, Rs1: 14, Imm: 0}, "ldd f2, 0(r14)"},
		{Inst{Op: CVTWD, Rd: 1, Rs1: 3}, "cvtwd f1, r3"},
		{Inst{Op: CVTDW, Rd: 3, Rs1: 1}, "cvtdw r3, f1"},
		{Inst{Op: JAL, Rd: 15, Imm2: 100}, "jal r15, 100"},
		{Inst{Op: JR, Rs1: 15}, "jr r15"},
		{Inst{Op: SYSCALL, Imm: 3}, "syscall 3"},
		{Inst{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in.Op.Name(), got, c.want)
		}
	}
}

func TestDefsUses(t *testing.T) {
	st := Inst{Op: STW, Rd: 5, Rs1: 14, Imm: 8}
	if st.Defs() != -1 {
		t.Errorf("store defines %d", st.Defs())
	}
	uses := st.Uses(nil)
	if len(uses) != 2 {
		t.Errorf("store uses %v", uses)
	}
	ld := Inst{Op: LDW, Rd: 5, Rs1: 14}
	if ld.Defs() != 5 {
		t.Errorf("load defines %d", ld.Defs())
	}
	fa := Inst{Op: FADDD, Rd: 1, Rs1: 2, Rs2: 3}
	if fa.Defs() != -1 || fa.FDefs() != 1 {
		t.Errorf("faddd defs: int %d fp %d", fa.Defs(), fa.FDefs())
	}
	fu := fa.FUses(nil)
	if len(fu) != 2 || fu[0] != 2 || fu[1] != 3 {
		t.Errorf("faddd fuses %v", fu)
	}
	cv := Inst{Op: CVTDW, Rd: 3, Rs1: 1}
	if cv.Defs() != 3 || cv.FDefs() != -1 {
		t.Errorf("cvtdw defs: int %d fp %d", cv.Defs(), cv.FDefs())
	}
	if fu := cv.FUses(nil); len(fu) != 1 || fu[0] != 1 {
		t.Errorf("cvtdw fuses %v", fu)
	}
	stf := Inst{Op: STD, Rd: 2, Rs1: 14}
	if u := stf.Uses(nil); len(u) != 1 || u[0] != 14 {
		t.Errorf("std int uses %v", u)
	}
	if fu := stf.FUses(nil); len(fu) != 1 || fu[0] != 2 {
		t.Errorf("std fp uses %v", fu)
	}
}

func TestDisassembleLabels(t *testing.T) {
	text := []Inst{
		{Op: LDI, Rd: 1, Imm: 0},
		{Op: BEQI, Rs1: 1, Imm: 3, Imm2: 3},
		{Op: JMP, Imm2: 1},
		{Op: HALT},
	}
	syms := []Symbol{{Name: "main", Section: SecText, Value: 0, Global: true}}
	out := Disassemble(text, syms)
	if !strings.Contains(out, "main:") {
		t.Errorf("missing symbol label:\n%s", out)
	}
	if !strings.Contains(out, "jmp .L") && !strings.Contains(out, "jmp main") {
		t.Errorf("jump target not labelled:\n%s", out)
	}
	if strings.Contains(out, "beqi r1, 3, 3") {
		t.Errorf("branch target left numeric:\n%s", out)
	}
}
