// Package ovm defines the Omniware virtual machine: a RISC-like,
// software-defined computer architecture with 16 integer and 16
// floating-point registers, 8/16/32-bit integer and IEEE single/double
// floating-point data types, 32-bit immediate address offsets, general
// compare-and-branch instructions, and a segmented virtual memory model.
//
// The package provides the instruction set definition, a fixed 12-byte
// binary instruction encoding, the OMX object/executable module format,
// and a disassembler. It deliberately contains no execution machinery;
// see internal/interp for the abstract-machine interpreter and
// internal/translate for the load-time translators.
package ovm

import "fmt"

// Opcode identifies an OmniVM instruction.
type Opcode uint8

// The OmniVM instruction set. Instruction operands are named Rd (integer
// destination, or source value for stores), Rs1 and Rs2 (integer sources),
// Fd/Fs1/Fs2 (floating-point registers, stored in the same operand bytes),
// Imm (32-bit immediate: ALU constant, memory offset, or compare constant)
// and Imm2 (32-bit immediate: branch/jump target, as a code index).
const (
	NOP Opcode = iota

	// Integer register-register ALU.
	ADD // Rd = Rs1 + Rs2
	SUB
	MUL
	DIV  // signed; divide by zero raises an arithmetic exception
	DIVU // unsigned
	REM
	REMU
	AND
	OR
	XOR
	SLL // shift left logical (Rs2 mod 32)
	SRL
	SRA
	SLT  // Rd = (Rs1 < Rs2) signed ? 1 : 0
	SLTU // unsigned compare

	// Integer register-immediate ALU (Imm is the operand).
	ADDI
	MULI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	SLTIU

	// Constant and address formation.
	LDI // Rd = Imm (full 32-bit immediate)
	LDA // Rd = Imm; Imm carries a relocated symbol address

	// Endian-neutral byte manipulation: portable extract/insert of byte
	// lanes within a register word. Lane index is Imm (0..3, lane 0 is
	// the least significant byte).
	EXTB // Rd = (Rs1 >> (8*Imm)) & 0xff
	INSB // Rd = Rs1 with byte lane Imm replaced by low byte of Rs2

	// Loads: Rd = mem[Rs1 + Imm]. The offset is a full 32-bit immediate.
	LDB  // sign-extended byte
	LDBU // zero-extended byte
	LDH  // sign-extended halfword
	LDHU
	LDW

	// Indexed loads: Rd = mem[Rs1 + Rs2].
	LDBX
	LDBUX
	LDHX
	LDHUX
	LDWX

	// Stores: mem[Rs1 + Imm] = Rd (Rd is the value source).
	STB
	STH
	STW

	// Indexed stores: mem[Rs1 + Rs2] = Rd.
	STBX
	STHX
	STWX

	// Floating-point loads and stores (Fd is the FP value register).
	LDF // single
	LDD // double
	STF
	STD
	LDFX
	LDDX
	STFX
	STDX

	// Floating-point arithmetic. Single-precision ops round to float32.
	FADDS
	FSUBS
	FMULS
	FDIVS
	FADDD
	FSUBD
	FMULD
	FDIVD
	FNEGS
	FNEGD
	FABSS
	FABSD
	FMOV // Fd = Fs1 (bit copy, works for either precision)

	// Conversions between integer and floating registers.
	CVTWS // Fd = float32(int32(Rs1))
	CVTWD // Fd = float64(int32(Rs1))
	CVTSW // Rd = int32(truncate(float32(Fs1)))
	CVTDW // Rd = int32(truncate(float64(Fs1)))
	CVTSD // Fd = float64(float32(Fs1))
	CVTDS // Fd = float32(float64(Fs1))
	MOVWF // Fd raw bits = Rs1 (moves an integer bit pattern into an FP reg)
	MOVFW // Rd = low 32 raw bits of Fs1

	// Compare-and-branch, register-register: if Rs1 op Rs2 goto Imm2.
	BEQ
	BNE
	BLT
	BLE
	BGT
	BGE
	BLTU
	BLEU
	BGTU
	BGEU

	// Compare-and-branch, register-immediate: if Rs1 op Imm goto Imm2.
	BEQI
	BNEI
	BLTI
	BLEI
	BGTI
	BGEI
	BLTUI
	BLEUI
	BGTUI
	BGEUI

	// Floating-point compare-and-branch: if Fs1 op Fs2 goto Imm2.
	FBEQ
	FBNE
	FBLT
	FBLE

	// Control transfer. Code addresses are instruction indices.
	JMP  // goto Imm2
	JAL  // Rd = return address (next instruction index); goto Imm2
	JALR // Rd = return address; goto Rs1 (indirect call)
	JR   // goto Rs1 (indirect jump / return)

	// Host interface and termination.
	SYSCALL // host call number Imm; arguments in r1..r4, result in r1
	BREAK   // raise a breakpoint exception
	HALT    // terminate the module; exit status in r1

	numOpcodes
)

// NumOpcodes is the count of defined opcodes (for table sizing and
// property tests).
const NumOpcodes = int(numOpcodes)

// Integer register conventions. OmniVM has 16 integer registers r0..r15.
const (
	RZero = 0 // always reads as zero; writes are discarded
	RRet  = 1 // return value, first argument
	RArg0 = 1 // arguments r1..r4
	RArg1 = 2
	RArg2 = 3
	RArg3 = 4
	RSP   = 14 // stack pointer
	RRA   = 15 // return address (written by JAL/JALR by convention)
)

// NumIntRegs and NumFPRegs give the architectural register file sizes.
const (
	NumIntRegs = 16
	NumFPRegs  = 16
)

// CallerSavedInt lists integer registers a callee may clobber (r1..r9
// plus ra). CalleeSavedInt lists registers preserved across calls.
var (
	CallerSavedInt = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15}
	CalleeSavedInt = []int{10, 11, 12, 13}
	CallerSavedFP  = []int{0, 1, 2, 3, 4, 5, 6, 7}
	CalleeSavedFP  = []int{8, 9, 10, 11, 12, 13, 14, 15}
)

// Format describes the operand shape of an opcode, used by the
// assembler, disassembler and encoding validator.
type Format uint8

const (
	FmtNone   Format = iota // no operands
	FmtRRR                  // rd, rs1, rs2
	FmtRRI                  // rd, rs1, imm
	FmtRI                   // rd, imm
	FmtRR                   // rd, rs1
	FmtLoad                 // rd, imm(rs1)
	FmtLoadX                // rd, (rs1+rs2)
	FmtStore                // rd, imm(rs1)   (rd is the value source)
	FmtStoreX               // rd, (rs1+rs2)
	FmtBrRR                 // rs1, rs2, target
	FmtBrRI                 // rs1, imm, target
	FmtJmp                  // target
	FmtJal                  // rd, target
	FmtJr                   // rs1
	FmtJalr                 // rd, rs1
	FmtSys                  // imm
)

// opInfo records per-opcode metadata.
type opInfo struct {
	name string
	fmt  Format
	fp   bool // operates on FP registers (in the shared operand bytes)
}

var opTable = [numOpcodes]opInfo{
	NOP:  {"nop", FmtNone, false},
	ADD:  {"add", FmtRRR, false},
	SUB:  {"sub", FmtRRR, false},
	MUL:  {"mul", FmtRRR, false},
	DIV:  {"div", FmtRRR, false},
	DIVU: {"divu", FmtRRR, false},
	REM:  {"rem", FmtRRR, false},
	REMU: {"remu", FmtRRR, false},
	AND:  {"and", FmtRRR, false},
	OR:   {"or", FmtRRR, false},
	XOR:  {"xor", FmtRRR, false},
	SLL:  {"sll", FmtRRR, false},
	SRL:  {"srl", FmtRRR, false},
	SRA:  {"sra", FmtRRR, false},
	SLT:  {"slt", FmtRRR, false},
	SLTU: {"sltu", FmtRRR, false},

	ADDI:  {"addi", FmtRRI, false},
	MULI:  {"muli", FmtRRI, false},
	ANDI:  {"andi", FmtRRI, false},
	ORI:   {"ori", FmtRRI, false},
	XORI:  {"xori", FmtRRI, false},
	SLLI:  {"slli", FmtRRI, false},
	SRLI:  {"srli", FmtRRI, false},
	SRAI:  {"srai", FmtRRI, false},
	SLTI:  {"slti", FmtRRI, false},
	SLTIU: {"sltiu", FmtRRI, false},

	LDI: {"ldi", FmtRI, false},
	LDA: {"lda", FmtRI, false},

	EXTB: {"extb", FmtRRI, false},
	INSB: {"insb", FmtRRR, false},

	LDB:   {"ldb", FmtLoad, false},
	LDBU:  {"ldbu", FmtLoad, false},
	LDH:   {"ldh", FmtLoad, false},
	LDHU:  {"ldhu", FmtLoad, false},
	LDW:   {"ldw", FmtLoad, false},
	LDBX:  {"ldbx", FmtLoadX, false},
	LDBUX: {"ldbux", FmtLoadX, false},
	LDHX:  {"ldhx", FmtLoadX, false},
	LDHUX: {"ldhux", FmtLoadX, false},
	LDWX:  {"ldwx", FmtLoadX, false},

	STB:  {"stb", FmtStore, false},
	STH:  {"sth", FmtStore, false},
	STW:  {"stw", FmtStore, false},
	STBX: {"stbx", FmtStoreX, false},
	STHX: {"sthx", FmtStoreX, false},
	STWX: {"stwx", FmtStoreX, false},

	LDF:  {"ldf", FmtLoad, true},
	LDD:  {"ldd", FmtLoad, true},
	STF:  {"stf", FmtStore, true},
	STD:  {"std", FmtStore, true},
	LDFX: {"ldfx", FmtLoadX, true},
	LDDX: {"lddx", FmtLoadX, true},
	STFX: {"stfx", FmtStoreX, true},
	STDX: {"stdx", FmtStoreX, true},

	FADDS: {"fadds", FmtRRR, true},
	FSUBS: {"fsubs", FmtRRR, true},
	FMULS: {"fmuls", FmtRRR, true},
	FDIVS: {"fdivs", FmtRRR, true},
	FADDD: {"faddd", FmtRRR, true},
	FSUBD: {"fsubd", FmtRRR, true},
	FMULD: {"fmuld", FmtRRR, true},
	FDIVD: {"fdivd", FmtRRR, true},
	FNEGS: {"fnegs", FmtRR, true},
	FNEGD: {"fnegd", FmtRR, true},
	FABSS: {"fabss", FmtRR, true},
	FABSD: {"fabsd", FmtRR, true},
	FMOV:  {"fmov", FmtRR, true},

	CVTWS: {"cvtws", FmtRR, true},
	CVTWD: {"cvtwd", FmtRR, true},
	CVTSW: {"cvtsw", FmtRR, true},
	CVTDW: {"cvtdw", FmtRR, true},
	CVTSD: {"cvtsd", FmtRR, true},
	CVTDS: {"cvtds", FmtRR, true},
	MOVWF: {"movwf", FmtRR, true},
	MOVFW: {"movfw", FmtRR, true},

	BEQ:  {"beq", FmtBrRR, false},
	BNE:  {"bne", FmtBrRR, false},
	BLT:  {"blt", FmtBrRR, false},
	BLE:  {"ble", FmtBrRR, false},
	BGT:  {"bgt", FmtBrRR, false},
	BGE:  {"bge", FmtBrRR, false},
	BLTU: {"bltu", FmtBrRR, false},
	BLEU: {"bleu", FmtBrRR, false},
	BGTU: {"bgtu", FmtBrRR, false},
	BGEU: {"bgeu", FmtBrRR, false},

	BEQI:  {"beqi", FmtBrRI, false},
	BNEI:  {"bnei", FmtBrRI, false},
	BLTI:  {"blti", FmtBrRI, false},
	BLEI:  {"blei", FmtBrRI, false},
	BGTI:  {"bgti", FmtBrRI, false},
	BGEI:  {"bgei", FmtBrRI, false},
	BLTUI: {"bltui", FmtBrRI, false},
	BLEUI: {"bleui", FmtBrRI, false},
	BGTUI: {"bgtui", FmtBrRI, false},
	BGEUI: {"bgeui", FmtBrRI, false},

	FBEQ: {"fbeq", FmtBrRR, true},
	FBNE: {"fbne", FmtBrRR, true},
	FBLT: {"fblt", FmtBrRR, true},
	FBLE: {"fble", FmtBrRR, true},

	JMP:  {"jmp", FmtJmp, false},
	JAL:  {"jal", FmtJal, false},
	JALR: {"jalr", FmtJalr, false},
	JR:   {"jr", FmtJr, false},

	SYSCALL: {"syscall", FmtSys, false},
	BREAK:   {"break", FmtNone, false},
	HALT:    {"halt", FmtNone, false},
}

// Name returns the assembler mnemonic for op.
func (op Opcode) Name() string {
	if int(op) >= NumOpcodes {
		return fmt.Sprintf("op?%d", uint8(op))
	}
	return opTable[op].name
}

// Format returns the operand format of op.
func (op Opcode) Format() Format {
	if int(op) >= NumOpcodes {
		return FmtNone
	}
	return opTable[op].fmt
}

// IsFP reports whether op names floating-point registers in its operand
// fields.
func (op Opcode) IsFP() bool {
	if int(op) >= NumOpcodes {
		return false
	}
	return opTable[op].fp
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return int(op) < NumOpcodes }

// IsBranch reports whether op is a conditional compare-and-branch.
func (op Opcode) IsBranch() bool {
	return (op >= BEQ && op <= BGEUI) || (op >= FBEQ && op <= FBLE)
}

// IsLoad reports whether op reads memory.
func (op Opcode) IsLoad() bool {
	switch op {
	case LDB, LDBU, LDH, LDHU, LDW, LDBX, LDBUX, LDHX, LDHUX, LDWX, LDF, LDD, LDFX, LDDX:
		return true
	}
	return false
}

// IsStore reports whether op writes memory.
func (op Opcode) IsStore() bool {
	switch op {
	case STB, STH, STW, STBX, STHX, STWX, STF, STD, STFX, STDX:
		return true
	}
	return false
}

// IsIndexed reports whether a memory op uses the register+register
// addressing mode.
func (op Opcode) IsIndexed() bool {
	switch op {
	case LDBX, LDBUX, LDHX, LDHUX, LDWX, STBX, STHX, STWX, LDFX, LDDX, STFX, STDX:
		return true
	}
	return false
}

// MemSize returns the access width in bytes of a memory opcode, or 0 for
// non-memory opcodes.
func (op Opcode) MemSize() int {
	switch op {
	case LDB, LDBU, LDBX, LDBUX, STB, STBX:
		return 1
	case LDH, LDHU, LDHX, LDHUX, STH, STHX:
		return 2
	case LDW, LDWX, STW, STWX, LDF, LDFX, STF, STFX:
		return 4
	case LDD, LDDX, STD, STDX:
		return 8
	}
	return 0
}

// IsCall reports whether op transfers control and records a return
// address.
func (op Opcode) IsCall() bool { return op == JAL || op == JALR }

// IsTerminator reports whether op unconditionally ends a basic block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case JMP, JR, HALT, BREAK:
		return true
	}
	return false
}

// OpcodeByName maps assembler mnemonics to opcodes.
var OpcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// IntRegName returns the conventional name of integer register r.
func IntRegName(r uint8) string { return fmt.Sprintf("r%d", r) }

// FPRegName returns the conventional name of floating-point register r.
func FPRegName(r uint8) string { return fmt.Sprintf("f%d", r) }
