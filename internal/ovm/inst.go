package ovm

import (
	"errors"
	"fmt"
)

// Inst is one OmniVM instruction. Every instruction carries the same
// operand fields; which are meaningful depends on Op.Format(). Imm is a
// full 32-bit immediate (the paper's "32 bit immediate offsets"); Imm2
// holds branch and jump targets as instruction indices into the text
// section.
type Inst struct {
	Op   Opcode
	Rd   uint8
	Rs1  uint8
	Rs2  uint8
	Imm  int32
	Imm2 int32
}

// InstBytes is the size of one encoded instruction.
const InstBytes = 12

var errBadReg = errors.New("ovm: register out of range")

// Validate checks that the instruction is well formed: defined opcode,
// registers within the architectural file for the operand fields its
// format uses.
func (in Inst) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("ovm: invalid opcode %d", in.Op)
	}
	lim := uint8(NumIntRegs)
	// FP formats name FP registers in the same fields; the file sizes
	// are equal but keep the check explicit.
	if in.Op.IsFP() {
		lim = uint8(NumFPRegs)
	}
	switch in.Op.Format() {
	case FmtNone, FmtSys, FmtJmp:
	case FmtRRR, FmtLoadX, FmtStoreX, FmtBrRR:
		if in.Rd >= lim || in.Rs1 >= lim || in.Rs2 >= lim {
			return errBadReg
		}
	case FmtRRI, FmtLoad, FmtStore, FmtBrRI, FmtRR, FmtJalr:
		if in.Rd >= lim || in.Rs1 >= lim {
			return errBadReg
		}
	case FmtRI, FmtJal:
		if in.Rd >= lim {
			return errBadReg
		}
	case FmtJr:
		if in.Rs1 >= lim {
			return errBadReg
		}
	}
	// Mixed int/FP formats: loads and stores address through an integer
	// base register even when the value register is FP, and FP branches
	// compare FP registers. The shared check above is sufficient because
	// both files have 16 registers; the distinction matters only to
	// consumers.
	return nil
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	rn, fn := IntRegName, FPRegName
	vd := rn(in.Rd)
	v1 := rn(in.Rs1)
	v2 := rn(in.Rs2)
	if in.Op.IsFP() {
		switch in.Op {
		case LDF, LDD, STF, STD, LDFX, LDDX, STFX, STDX:
			// FP value register, integer base/index registers.
			vd = fn(in.Rd)
		case CVTWS, CVTWD, MOVWF:
			vd, v1 = fn(in.Rd), rn(in.Rs1)
		case CVTSW, CVTDW, MOVFW:
			vd, v1 = rn(in.Rd), fn(in.Rs1)
		case FBEQ, FBNE, FBLT, FBLE:
			v1, v2 = fn(in.Rs1), fn(in.Rs2)
		default:
			vd, v1, v2 = fn(in.Rd), fn(in.Rs1), fn(in.Rs2)
		}
	}
	name := in.Op.Name()
	switch in.Op.Format() {
	case FmtNone:
		return name
	case FmtRRR:
		return fmt.Sprintf("%s %s, %s, %s", name, vd, v1, v2)
	case FmtRRI:
		return fmt.Sprintf("%s %s, %s, %d", name, vd, v1, in.Imm)
	case FmtRI:
		return fmt.Sprintf("%s %s, %d", name, vd, in.Imm)
	case FmtRR:
		return fmt.Sprintf("%s %s, %s", name, vd, v1)
	case FmtLoad, FmtStore:
		return fmt.Sprintf("%s %s, %d(%s)", name, vd, in.Imm, v1)
	case FmtLoadX, FmtStoreX:
		return fmt.Sprintf("%s %s, (%s+%s)", name, vd, v1, v2)
	case FmtBrRR:
		return fmt.Sprintf("%s %s, %s, %d", name, v1, v2, in.Imm2)
	case FmtBrRI:
		return fmt.Sprintf("%s %s, %d, %d", name, v1, in.Imm, in.Imm2)
	case FmtJmp:
		return fmt.Sprintf("%s %d", name, in.Imm2)
	case FmtJal:
		return fmt.Sprintf("%s %s, %d", name, vd, in.Imm2)
	case FmtJalr:
		return fmt.Sprintf("%s %s, %s", name, vd, v1)
	case FmtJr:
		return fmt.Sprintf("%s %s", name, v1)
	case FmtSys:
		return fmt.Sprintf("%s %d", name, in.Imm)
	}
	return name
}

// Defs returns the integer register defined by the instruction, or -1.
// FP defs are reported by FDefs.
func (in Inst) Defs() int {
	if in.Op.IsFP() {
		switch in.Op {
		case CVTSW, CVTDW, MOVFW:
			return int(in.Rd)
		}
		return -1
	}
	switch in.Op.Format() {
	case FmtRRR, FmtRRI, FmtRI, FmtRR, FmtLoad, FmtLoadX, FmtJal, FmtJalr:
		return int(in.Rd)
	case FmtSys:
		return RRet // host calls return in r1
	}
	return -1
}

// FDefs returns the FP register defined by the instruction, or -1.
func (in Inst) FDefs() int {
	if !in.Op.IsFP() {
		return -1
	}
	switch in.Op {
	case STF, STD, STFX, STDX, FBEQ, FBNE, FBLT, FBLE, CVTSW, CVTDW, MOVFW:
		return -1
	}
	return int(in.Rd)
}

// Uses appends the integer registers read by the instruction to dst and
// returns it.
func (in Inst) Uses(dst []int) []int {
	f := in.Op.Format()
	if in.Op.IsFP() {
		// Memory ops use integer base/index registers; conversions from
		// the integer file read Rs1.
		switch in.Op {
		case LDF, LDD, STF, STD:
			return append(dst, int(in.Rs1))
		case LDFX, LDDX, STFX, STDX:
			return append(dst, int(in.Rs1), int(in.Rs2))
		case CVTWS, CVTWD, MOVWF:
			return append(dst, int(in.Rs1))
		}
		return dst
	}
	switch f {
	case FmtRRR, FmtBrRR, FmtStoreX:
		dst = append(dst, int(in.Rs1), int(in.Rs2))
		if f == FmtStoreX {
			dst = append(dst, int(in.Rd))
		}
	case FmtRRI, FmtLoad, FmtBrRI, FmtRR, FmtJalr, FmtJr:
		dst = append(dst, int(in.Rs1))
	case FmtLoadX:
		dst = append(dst, int(in.Rs1), int(in.Rs2))
	case FmtStore:
		dst = append(dst, int(in.Rs1), int(in.Rd))
	case FmtSys:
		dst = append(dst, RArg0, RArg1, RArg2, RArg3)
	}
	return dst
}

// FUses appends the FP registers read by the instruction to dst and
// returns it.
func (in Inst) FUses(dst []int) []int {
	if !in.Op.IsFP() {
		return dst
	}
	switch in.Op {
	case LDF, LDD, LDFX, LDDX, CVTWS, CVTWD, MOVWF:
		return dst
	case STF, STD, STFX, STDX:
		return append(dst, int(in.Rd))
	case FBEQ, FBNE, FBLT, FBLE:
		return append(dst, int(in.Rs1), int(in.Rs2))
	case FNEGS, FNEGD, FABSS, FABSD, FMOV, CVTSD, CVTDS, CVTSW, CVTDW, MOVFW:
		return append(dst, int(in.Rs1))
	default: // three-operand arithmetic
		return append(dst, int(in.Rs1), int(in.Rs2))
	}
}
