package ovm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Section identifies which section a symbol lives in.
type Section uint8

const (
	SecText Section = iota // value is an instruction index
	SecData                // value is a byte offset into the data image
	SecBSS                 // value is a byte offset into the bss area
	SecUndef
)

func (s Section) String() string {
	switch s {
	case SecText:
		return "text"
	case SecData:
		return "data"
	case SecBSS:
		return "bss"
	default:
		return "undef"
	}
}

// Symbol is a named location in an object file or module.
type Symbol struct {
	Name    string
	Section Section
	Value   uint32
	Global  bool
}

// RelocKind distinguishes how a relocation value is computed.
type RelocKind uint8

const (
	RelAbs  RelocKind = iota // absolute address of a data/bss symbol
	RelCode                  // instruction index of a text symbol
)

// RelocField says which immediate field of an instruction a text
// relocation patches.
type RelocField uint8

const (
	FieldImm RelocField = iota
	FieldImm2
)

// Reloc patches a location with the resolved value of Symbol+Addend.
// For text relocations, Offset is an instruction index and Field selects
// the immediate; for data relocations, Offset is a byte offset of a
// 32-bit word in the data image and Field is ignored.
type Reloc struct {
	Offset uint32
	Field  RelocField
	Kind   RelocKind
	Symbol string
	Addend int32
}

// Object is a relocatable OmniVM object file ("OMO" format), the output
// of the assembler and input to the linker.
type Object struct {
	Name     string // source name, for diagnostics
	Text     []Inst
	Data     []byte
	BSSSize  uint32
	Symbols  []Symbol
	TextRel  []Reloc
	DataRel  []Reloc
	SrcLines []int32 // optional: source line per instruction (same len as Text)
}

// Module is a linked, executable OmniVM module ("OMX" format): the unit
// of mobile code that a host loads, translates and runs.
type Module struct {
	Text     []Inst
	Data     []byte
	BSSSize  uint32
	Entry    int32  // instruction index of the entry point
	DataBase uint32 // virtual address where the data image must be mapped
	Symbols  []Symbol
	// CodePtrs lists byte offsets of 32-bit words in Data that hold
	// code addresses (instruction indices). Native back ends patch these
	// to their own indices; translators leave them as OmniVM indices and
	// convert at indirect-branch time.
	CodePtrs []uint32
}

// DataEnd returns the first address past initialized data and bss.
func (m *Module) DataEnd() uint32 {
	return m.DataBase + uint32(len(m.Data)) + m.BSSSize
}

const (
	objMagic = "OMO1"
	modMagic = "OMX1"
)

var (
	// ErrBadMagic is returned when deserializing a file with the wrong
	// leading magic bytes.
	ErrBadMagic = errors.New("ovm: bad magic")
)

type wr struct {
	buf bytes.Buffer
}

func (w *wr) u32(v uint32)   { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); w.buf.Write(b[:]) }
func (w *wr) i32(v int32)    { w.u32(uint32(v)) }
func (w *wr) str(s string)   { w.u32(uint32(len(s))); w.buf.WriteString(s) }
func (w *wr) bytes(b []byte) { w.u32(uint32(len(b))); w.buf.Write(b) }

type rd struct {
	b   []byte
	off int
	err error
}

func (r *rd) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rd) i32() int32 { return int32(r.u32()) }

func (r *rd) str() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rd) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := make([]byte, n)
	copy(b, r.b[r.off:])
	r.off += n
	return b
}

func writeSymbols(w *wr, syms []Symbol) {
	w.u32(uint32(len(syms)))
	for _, s := range syms {
		w.str(s.Name)
		w.buf.WriteByte(byte(s.Section))
		if s.Global {
			w.buf.WriteByte(1)
		} else {
			w.buf.WriteByte(0)
		}
		w.u32(s.Value)
	}
}

func readSymbols(r *rd) []Symbol {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > math.MaxInt32 {
		return nil
	}
	syms := make([]Symbol, 0, min(n, 1<<16))
	for i := 0; i < n && r.err == nil; i++ {
		var s Symbol
		s.Name = r.str()
		if r.off+2 > len(r.b) {
			r.err = io.ErrUnexpectedEOF
			return nil
		}
		s.Section = Section(r.b[r.off])
		s.Global = r.b[r.off+1] != 0
		r.off += 2
		s.Value = r.u32()
		syms = append(syms, s)
	}
	return syms
}

func writeRelocs(w *wr, rels []Reloc) {
	w.u32(uint32(len(rels)))
	for _, rel := range rels {
		w.u32(rel.Offset)
		w.buf.WriteByte(byte(rel.Field))
		w.buf.WriteByte(byte(rel.Kind))
		w.str(rel.Symbol)
		w.i32(rel.Addend)
	}
}

func readRelocs(r *rd) []Reloc {
	n := int(r.u32())
	if r.err != nil || n < 0 {
		return nil
	}
	rels := make([]Reloc, 0, min(n, 1<<16))
	for i := 0; i < n && r.err == nil; i++ {
		var rel Reloc
		rel.Offset = r.u32()
		if r.off+2 > len(r.b) {
			r.err = io.ErrUnexpectedEOF
			return nil
		}
		rel.Field = RelocField(r.b[r.off])
		rel.Kind = RelocKind(r.b[r.off+1])
		r.off += 2
		rel.Symbol = r.str()
		rel.Addend = r.i32()
		rels = append(rels, rel)
	}
	return rels
}

// Encode serializes the object file.
func (o *Object) Encode() []byte {
	w := &wr{}
	w.buf.WriteString(objMagic)
	w.str(o.Name)
	w.bytes(EncodeText(o.Text))
	w.bytes(o.Data)
	w.u32(o.BSSSize)
	writeSymbols(w, o.Symbols)
	writeRelocs(w, o.TextRel)
	writeRelocs(w, o.DataRel)
	w.u32(uint32(len(o.SrcLines)))
	for _, ln := range o.SrcLines {
		w.i32(ln)
	}
	return w.buf.Bytes()
}

// DecodeObject deserializes an object file.
func DecodeObject(data []byte) (*Object, error) {
	if len(data) < 4 || string(data[:4]) != objMagic {
		return nil, ErrBadMagic
	}
	r := &rd{b: data, off: 4}
	o := &Object{}
	o.Name = r.str()
	text := r.bytes()
	o.Data = r.bytes()
	o.BSSSize = r.u32()
	o.Symbols = readSymbols(r)
	o.TextRel = readRelocs(r)
	o.DataRel = readRelocs(r)
	nlines := int(r.u32())
	if r.err == nil && nlines >= 0 && nlines <= len(r.b) {
		o.SrcLines = make([]int32, nlines)
		for i := range o.SrcLines {
			o.SrcLines[i] = r.i32()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("ovm: decoding object: %w", r.err)
	}
	var err error
	o.Text, err = DecodeText(text)
	if err != nil {
		return nil, err
	}
	return o, nil
}

// Encode serializes the executable module.
func (m *Module) Encode() []byte {
	w := &wr{}
	w.buf.WriteString(modMagic)
	w.bytes(EncodeText(m.Text))
	w.bytes(m.Data)
	w.u32(m.BSSSize)
	w.i32(m.Entry)
	w.u32(m.DataBase)
	writeSymbols(w, m.Symbols)
	w.u32(uint32(len(m.CodePtrs)))
	for _, p := range m.CodePtrs {
		w.u32(p)
	}
	return w.buf.Bytes()
}

// DecodeModule deserializes an executable module.
func DecodeModule(data []byte) (*Module, error) {
	if len(data) < 4 || string(data[:4]) != modMagic {
		return nil, ErrBadMagic
	}
	r := &rd{b: data, off: 4}
	m := &Module{}
	text := r.bytes()
	m.Data = r.bytes()
	m.BSSSize = r.u32()
	m.Entry = r.i32()
	m.DataBase = r.u32()
	m.Symbols = readSymbols(r)
	ncp := int(r.u32())
	if r.err == nil && ncp >= 0 && ncp <= len(r.b) {
		m.CodePtrs = make([]uint32, ncp)
		for i := range m.CodePtrs {
			m.CodePtrs[i] = r.u32()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("ovm: decoding module: %w", r.err)
	}
	var err error
	m.Text, err = DecodeText(text)
	if err != nil {
		return nil, err
	}
	if m.Entry < 0 || int(m.Entry) >= len(m.Text) {
		return nil, fmt.Errorf("ovm: entry point %d out of range (%d instructions)", m.Entry, len(m.Text))
	}
	return m, nil
}

// Lookup finds a symbol by name, preferring global symbols.
func Lookup(syms []Symbol, name string) (Symbol, bool) {
	for _, s := range syms {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}
