package ovm

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a text section as assembler source. Branch and
// jump targets are rewritten to generated labels (or to symbol names
// when syms covers them), so the output round-trips through the
// assembler.
func Disassemble(text []Inst, syms []Symbol) string {
	names := map[int32]string{}
	for _, s := range syms {
		if s.Section == SecText {
			names[int32(s.Value)] = s.Name
		}
	}
	// Collect branch targets that need labels.
	targets := map[int32]bool{}
	for _, in := range text {
		switch in.Op.Format() {
		case FmtBrRR, FmtBrRI, FmtJmp, FmtJal:
			targets[in.Imm2] = true
		}
	}
	order := make([]int32, 0, len(targets))
	for t := range targets {
		order = append(order, t)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for i, t := range order {
		if _, ok := names[t]; !ok {
			names[t] = fmt.Sprintf(".L%d", i)
		}
	}

	var b strings.Builder
	b.WriteString(".text\n")
	for i, in := range text {
		if name, ok := names[int32(i)]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		s := in.String()
		switch in.Op.Format() {
		case FmtBrRR, FmtBrRI, FmtJmp, FmtJal:
			// Replace the trailing numeric target with its label.
			if name, ok := names[in.Imm2]; ok {
				idx := strings.LastIndexByte(s, ' ')
				s = s[:idx+1] + name
			}
		}
		fmt.Fprintf(&b, "\t%s\n", s)
	}
	return b.String()
}
