package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
)

// Script-free smoke tests: re-execute the test binary as the real
// command (smokeEnv gates the dispatch in TestMain) and check streams
// and exit codes.
const smokeEnv = "OMNIBENCH_SMOKE_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(smokeEnv) == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runCmd(t *testing.T, args ...string) (exitCode int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), smokeEnv+"=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return code, out.String(), errb.String()
}

func TestFigure2(t *testing.T) {
	code, out, _ := runCmd(t, "-figure", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"universal substrate", "OmniVM", "translator"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing %q:\n%s", want, out)
		}
	}
}

func TestNothingSelected(t *testing.T) {
	code, _, stderr := runCmd(t)
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "nothing selected") {
		t.Errorf("stderr %q", stderr)
	}
}

// One real table end to end: builds the workloads and regenerates
// Table 1 at the test scale. The ratio cells must parse as numbers in
// a plausible band (every translated/native ratio the suite produces
// lives well inside (0.5, 3)), which catches a broken measurement
// without freezing digits the cost models are allowed to move.
func TestTable1EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("table regeneration skipped in -short mode")
	}
	code, out, stderr := runCmd(t, "-table", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "Table 1") {
		t.Fatalf("missing header:\n%s", out)
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 || fields[0] == "program" {
			continue
		}
		rows++
		for _, cell := range fields[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Errorf("row %q: bad cell %q", line, cell)
				continue
			}
			if v <= 0.5 || v >= 3 {
				t.Errorf("row %q: ratio %v out of band", line, v)
			}
		}
	}
	if rows != 5 { // li, compress, alvinn, eqntott, average
		t.Errorf("expected 5 data rows, found %d:\n%s", rows, out)
	}
}

// The same table through -json: machine-readable cells, no
// screen-scraping required.
func TestTable1JSON(t *testing.T) {
	if testing.Short() {
		t.Skip("table regeneration skipped in -short mode")
	}
	code, out, stderr := runCmd(t, "-table", "1", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var tables []struct {
		Name   string     `json:"name"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(tables) != 1 || tables[0].Name != "1" {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	tb := tables[0]
	if !strings.Contains(tb.Title, "Table 1") || len(tb.Header) != 5 || len(tb.Rows) != 5 {
		t.Errorf("shape off: title %q, %d header cells, %d rows", tb.Title, len(tb.Header), len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Errorf("row %v: bad cell %q", row, cell)
			}
		}
	}
}
