// omnibench regenerates the tables and figures of the paper's
// evaluation section (§4) using the simulated targets.
//
// Usage:
//
//	omnibench [-scale n] [-table 1|2|3|4|5|6|interp|sfiopt] [-figure 1|2] [-all] [-json]
//
// With -json the selected tables are emitted as one JSON array of
// {name, title, header, rows} objects instead of aligned text, so the
// numbers can be consumed by scripts without screen-scraping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"omniware/internal/bench"
)

const figure2 = `
Figure 2: a universal substrate for mobile code.

  C source   C++ source   Java source   ML source   Fortran source
      \           \            |            /            /
       +-----------+-----------+-----------+------------+
                   |  compilers targeting OmniVM  |
                   +-------------------------------+
                                 |
                        Mobile code (OMX module)
                                 |
              +---------+--------+--------+---------+
              |         |                 |         |
           MIPS       SPARC            PowerPC     x86
         translator  translator      translator  translator
         (SFI)       (SFI)           (SFI)       (SFI)
              |         |                 |         |
        loaded native executables, one per host processor
`

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (0 = built-in full size)")
	table := flag.String("table", "", "table to regenerate: 1-6, interp, sfiopt")
	figure := flag.String("figure", "", "figure to regenerate: 1 or 2")
	all := flag.Bool("all", false, "regenerate everything")
	jsonOut := flag.Bool("json", false, "emit selected tables as JSON")
	flag.Parse()

	if *figure == "2" && !*all {
		fmt.Print(figure2)
		return
	}

	fmt.Fprintf(os.Stderr, "building workloads (scale %d)...\n", *scale)
	s, err := bench.NewSuite(*scale)
	if err != nil {
		fail(err)
	}

	type gen struct {
		name string
		f    func() (*bench.Table, error)
	}
	gens := []gen{
		{"1", s.Table1}, {"2", s.Table2}, {"3", s.Table3}, {"4", s.Table4},
		{"5", s.Table5}, {"6", s.Table6},
		{"interp", s.InterpTable}, {"sfiopt", s.SFIHoistTable},
		{"readsfi", s.ReadSFITable}, {"fig1", s.Figure1},
	}
	type jsonTable struct {
		Name   string     `json:"name"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	var collected []jsonTable
	ran := false
	for _, g := range gens {
		want := *all || *table == g.name || (*figure == "1" && g.name == "fig1")
		if !want {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", g.name)
		t, err := g.f()
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			collected = append(collected, jsonTable{g.name, t.Title, t.Header, t.Rows})
		} else {
			fmt.Println(t)
		}
		ran = true
	}
	if *jsonOut && ran {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fail(err)
		}
	}
	if *all && !*jsonOut {
		fmt.Print(figure2)
	}
	if *all {
		ran = true
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "omnibench: nothing selected (use -table, -figure or -all)")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "omnibench: %v\n", err)
	os.Exit(1)
}
