// omnivet is the repo-local static-analysis pass, run in CI next to
// go vet. It enforces two project conventions the stock vet cannot
// know about:
//
//  1. No string-matching on error text. The serving and host layers
//     export typed sentinels (core.ErrBudget, core.ErrInterrupted,
//     and friends); code that calls strings.Contains/HasPrefix/... on
//     err.Error(), or compares err.Error() against a literal, is
//     matching on presentation instead of identity and breaks the
//     moment a message is reworded. Use errors.Is.
//
//  2. No non-atomic uses of metrics counter fields. The counters in
//     internal/serve/metrics (Metrics, TargetCounters) are lock-free
//     atomics updated from every worker; the only sound accesses are
//     the atomic method calls (Load, Add, Store, Swap, CAS). Taking a
//     counter's address, copying it, or ranging over a counter array
//     detaches the value from the atomic API and is flagged.
//
// Test files are exempt: _test.go code legitimately asserts on
// rendered error bodies (HTTP 422 text has no sentinel to compare
// against), and the driver analyzes GoFiles only.
//
// Usage:
//
//	omnivet [packages]   (default ./...)
//
// Exit codes follow the serving convention: 0 clean, 1 when findings
// were reported, 2 for infrastructure failure.
//
// The driver is deliberately stdlib-only (the module has no
// dependencies and CI must not fetch any): package metadata and
// export data come from `go list -export -deps -json`, and types come
// from go/types with importer.ForCompiler reading that export data.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// listPkg is the subset of `go list -json` output the driver needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string            // export data file (-export)
	GoFiles    []string          // source files, tests excluded
	ImportMap  map[string]string // import path → resolved path
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// run is main minus the process exit, so tests can drive it against
// another module directory (dir == "" means the current one).
func run(args []string, stdout, stderr io.Writer) int {
	return runIn("", args, stdout, stderr)
}

func runIn(dir string, args []string, stdout, stderr io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)...)
	cmd.Dir = dir
	cmd.Stderr = stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(stderr, "omnivet: go list: %v\n", err)
		return 2
	}

	// Decode the package stream: deps first, roots last. Every listed
	// package contributes export data; non-DepOnly module packages are
	// the analysis roots.
	exports := map[string]string{} // import path → export file
	var roots []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(stderr, "omnivet: decoding go list output: %v\n", err)
			return 2
		}
		if p.Error != nil {
			fmt.Fprintf(stderr, "omnivet: %s: %s\n", p.ImportPath, p.Error.Err)
			return 2
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			q := p
			roots = append(roots, &q)
		}
	}

	fset := token.NewFileSet()
	var findings []finding
	for _, p := range roots {
		fs, err := analyze(fset, p, exports)
		if err != nil {
			fmt.Fprintf(stderr, "omnivet: %s: %v\n", p.ImportPath, err)
			return 2
		}
		findings = append(findings, fs...)
	}

	sort.Slice(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].pos), fset.Position(findings[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s: %s\n", fset.Position(f.pos), f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "omnivet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// analyze parses and typechecks one package against its dependencies'
// export data, then runs the checks.
func analyze(fset *token.FileSet, p *listPkg, exports map[string]string) ([]finding, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, p.Dir+"/"+name, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if real, ok := p.ImportMap[path]; ok {
			path = real
		}
		ef, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ef)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect what we can; hard errors surface below
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
		return nil, fmt.Errorf("typecheck: %v", err)
	}

	var findings []finding
	for _, f := range files {
		findings = append(findings, checkFile(f, info)...)
	}
	return findings, nil
}
