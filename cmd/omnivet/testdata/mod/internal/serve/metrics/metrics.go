// Package metrics is a miniature stand-in for the real
// internal/serve/metrics, just enough shape for the omnivet tests:
// the checker keys on this import path and on sync/atomic field
// types, not on the full struct.
package metrics

import "sync/atomic"

// Metrics mirrors the counter shapes of the real package.
type Metrics struct {
	JobsRun atomic.Uint64
	Counts  [4]atomic.Uint64
}

// Touch exercises every access form the checker must accept.
func (m *Metrics) Touch() uint64 {
	m.JobsRun.Add(1)
	m.Counts[0].Add(2)
	total := m.JobsRun.Load()
	for i := range m.Counts {
		total += m.Counts[i].Load()
	}
	if len(m.Counts) > 0 {
		total++
	}
	return total
}
