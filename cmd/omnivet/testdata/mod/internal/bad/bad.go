// Package bad collects one instance of every violation omnivet
// reports, plus nearby legal forms that must stay unflagged.
package bad

import (
	"errors"
	"strings"

	"omniware/internal/serve/metrics"
)

var errBudget = errors.New("budget exhausted")

// MatchByText has both error-text matching violations.
func MatchByText(err error) bool {
	if strings.Contains(err.Error(), "budget") { // want: string-matching
		return true
	}
	if err.Error() == "interrupted" { // want: string-matching
		return true
	}
	// Legal: identity comparison and matching on plain strings.
	if errors.Is(err, errBudget) {
		return true
	}
	return strings.Contains("haystack", "needle")
}

// CounterMisuse has the non-atomic counter uses.
func CounterMisuse(m *metrics.Metrics) uint64 {
	v := m.JobsRun // want: non-atomic (copies the counter)
	load := m.Counts[1].Load
	for _, c := range m.Counts { // want: non-atomic (copies the array)
		_ = c
	}
	// Legal: atomic method calls.
	m.JobsRun.Add(1)
	return v.Load() + load()
}
