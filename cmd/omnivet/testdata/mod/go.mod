module omniware

go 1.22
