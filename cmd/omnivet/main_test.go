package main

import (
	"strings"
	"testing"
)

// vet runs the driver against the testdata module and returns exit
// code plus both streams.
func vet(t *testing.T, patterns ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := runIn("testdata/mod", patterns, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFindsViolations(t *testing.T) {
	code, out, errs := vet(t, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d findings, want 5:\n%s", len(lines), out)
	}
	for _, want := range []string{
		"string-matching on error text",
		"errors.Is",
		"core.ErrBudget",
		"non-atomic use of metrics counter metrics.Metrics.JobsRun",
		"non-atomic use of metrics counter metrics.Metrics.Counts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q:\n%s", want, out)
		}
	}
	// Two error-text findings, three counter findings; all in bad.go.
	if n := strings.Count(out, "string-matching"); n != 2 {
		t.Errorf("string-matching findings = %d, want 2:\n%s", n, out)
	}
	if n := strings.Count(out, "non-atomic"); n != 3 {
		t.Errorf("non-atomic findings = %d, want 3:\n%s", n, out)
	}
	if strings.Contains(out, "metrics.go") {
		t.Errorf("legal access forms in the metrics stub were flagged:\n%s", out)
	}
}

func TestCleanPackagePasses(t *testing.T) {
	code, out, errs := vet(t, "./internal/serve/metrics")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if out != "" {
		t.Fatalf("unexpected findings:\n%s", out)
	}
}
