package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// finding is one reported violation.
type finding struct {
	pos token.Pos
	msg string
}

// metricsPkg is the package whose counter fields are guarded by the
// atomic-use check.
const metricsPkg = "omniware/internal/serve/metrics"

// atomicMethods are the sound accesses to an atomic counter field.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true,
	"Swap": true, "CompareAndSwap": true,
}

// stringMatchFuncs are the strings-package predicates that, applied
// to error text, amount to matching errors by presentation.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "LastIndex": true,
}

// checkFile runs both checks over one typechecked file. The walk
// keeps an explicit parent stack so the atomic-use check can see how
// a counter selector is consumed.
func checkFile(f *ast.File, info *types.Info) []finding {
	var findings []finding
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if fd := checkErrorStringMatch(n, info); fd != nil {
				findings = append(findings, *fd)
			}
		case *ast.BinaryExpr:
			if fd := checkErrorStringCompare(n, info); fd != nil {
				findings = append(findings, *fd)
			}
		case *ast.SelectorExpr:
			if fd := checkCounterUse(n, stack, info); fd != nil {
				findings = append(findings, *fd)
			}
		}
		return true
	})
	return findings
}

// isErrorText reports whether e is a call of the error interface's
// Error method — the rendered text of an error value.
func isErrorText(e ast.Expr, info *types.Info) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return types.AssignableTo(tv.Type, types.Universe.Lookup("error").Type())
}

const sentinelHint = "string-matching on error text; use errors.Is with the typed sentinels (core.ErrBudget, core.ErrInterrupted, ...)"

// checkErrorStringMatch flags strings.Contains(err.Error(), ...) and
// friends.
func checkErrorStringMatch(call *ast.CallExpr, info *types.Info) *finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stringMatchFuncs[sel.Sel.Name] {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "strings" {
		return nil
	}
	for _, arg := range call.Args {
		if isErrorText(arg, info) {
			return &finding{pos: call.Pos(), msg: sentinelHint}
		}
	}
	return nil
}

// checkErrorStringCompare flags err.Error() == "..." (and !=).
func checkErrorStringCompare(b *ast.BinaryExpr, info *types.Info) *finding {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return nil
	}
	if isErrorText(b.X, info) || isErrorText(b.Y, info) {
		return &finding{pos: b.Pos(), msg: sentinelHint}
	}
	return nil
}

// checkCounterUse flags any use of a metrics counter field that is
// not an atomic method call. sel must be the current node and stack
// the path from the file root down to it (inclusive).
func checkCounterUse(sel *ast.SelectorExpr, stack []ast.Node, info *types.Info) *finding {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil || field.Pkg().Path() != metricsPkg {
		return nil
	}
	ft := field.Type()
	if arr, ok := ft.Underlying().(*types.Array); ok {
		ft = arr.Elem()
	}
	if !isAtomicCounter(ft) {
		return nil
	}

	// Walk up from the selector: an index step is fine (counter
	// arrays), and the only legal end state is being the receiver of
	// an atomic method call.
	use := ast.Node(sel)
	for i := len(stack) - 2; i >= 0; i-- {
		parent := stack[i]
		switch p := parent.(type) {
		case *ast.IndexExpr:
			if p.X == use {
				use = parent
				continue
			}
		case *ast.ParenExpr:
			use = parent
			continue
		case *ast.RangeStmt:
			// Index-only ranging over a counter array never reads the
			// counters (constant-length arrays are not even evaluated).
			if p.X == use && p.Value == nil {
				return nil
			}
		case *ast.CallExpr:
			// len() of a counter array reads no counter.
			if id, ok := p.Fun.(*ast.Ident); ok && id.Name == "len" && len(p.Args) == 1 && p.Args[0] == use {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					return nil
				}
			}
		case *ast.SelectorExpr:
			if p.X == use && atomicMethods[p.Sel.Name] {
				// Must actually be the Fun of a call: m.JobsRun.Load
				// as a method value still escapes the field.
				if j := i - 1; j >= 0 {
					if call, ok := stack[j].(*ast.CallExpr); ok && call.Fun == parent {
						return nil
					}
				}
			}
		}
		break
	}
	return &finding{
		pos: sel.Pos(),
		msg: "non-atomic use of metrics counter " + fieldName(s) + "; call its atomic methods (Load/Add/...) instead",
	}
}

func fieldName(s *types.Selection) string {
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	name := recv.String()
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + "." + s.Obj().Name()
}

// isAtomicCounter reports whether t is one of the sync/atomic integer
// types the metrics package counts with.
func isAtomicCounter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Uint32", "Uint64", "Int32", "Int64", "Bool", "Pointer", "Value":
		return true
	}
	return false
}
