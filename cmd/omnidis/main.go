// omnidis disassembles OmniVM modules and object files back to
// assembler syntax.
//
// Usage:
//
//	omnidis file.omx|file.omo
package main

import (
	"flag"
	"fmt"
	"os"

	"omniware/internal/ovm"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: omnidis file.omx|file.omo")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if mod, err := ovm.DecodeModule(data); err == nil {
		fmt.Printf("# module: %d instructions, %d data bytes, %d bss, entry %d, data base %#x\n",
			len(mod.Text), len(mod.Data), mod.BSSSize, mod.Entry, mod.DataBase)
		fmt.Print(ovm.Disassemble(mod.Text, mod.Symbols))
		return
	}
	obj, err := ovm.DecodeObject(data)
	if err != nil {
		fail(fmt.Errorf("not a module or object: %w", err))
	}
	fmt.Printf("# object %s: %d instructions, %d data bytes, %d bss\n",
		obj.Name, len(obj.Text), len(obj.Data), obj.BSSSize)
	fmt.Print(ovm.Disassemble(obj.Text, obj.Symbols))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "omnidis: %v\n", err)
	os.Exit(1)
}
