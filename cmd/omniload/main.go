// omniload is the load generator and benchmark driver for omniserved.
// It fires a deterministic, seeded schedule of module executions at a
// server over real HTTP — closed-loop (-clients concurrent workers)
// or open-loop (-rate fixed arrivals/sec) — across a weighted mix of
// workloads (the four SPEC92-style bench programs plus the trivial
// "trivload" module) and target machines, then emits a
// schema-versioned JSON report combining client-side latency and
// outcome counts with before/after deltas of the server's /v1/metrics
// (so stage quantiles describe this run, not the server's lifetime).
//
// Usage:
//
//	omniload run [-addr URL | -addrs URL,URL,... | -cluster N]
//	             [-mode closed|open] [-jobs N] [-seed N]
//	             [-clients N] [-rate R] [-mix W=w,...] [-targets T=w,...]
//	             [-scale N] [-deadline-ms N] [-prewarm] [-check] [-no-sfi]
//	             [-audit off|warn|enforce]
//	             [-allocs] [-out BENCH.json] [-quiet]
//	omniload validate [-strict] BENCH.json
//
// Without -addr, run boots an in-process omniserved on a loopback
// port and drives that — the hermetic mode the checked-in BENCH_*.json
// artifacts and the CI smoke job use. With -addr it drives a live
// daemon. -addrs drives a running cluster through the hash-routing
// failover client and sums every member's metrics for the server
// delta; -cluster N boots an in-process N-node cluster first (the
// hermetic mode behind BENCH_2.json). -allocs additionally runs the host-lifecycle allocation
// benchmarks (testing.Benchmark in-process) and embeds allocs/op.
//
// validate re-checks an emitted report's schema and internal
// consistency; -strict additionally fails on any fault, error, or
// parity loss — the CI gate.
//
// Exit codes follow the serving convention: 0 clean, 1 when jobs
// faulted or errored (contained), 2 for infrastructure failure or an
// invalid report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"omniware/internal/load"
	"omniware/internal/netserve"
	"omniware/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: omniload {run|validate} [flags]")
	return serve.ExitInfra
}

// run is main minus the process exit, so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return cmdRun(rest, stdout, stderr)
	case "validate":
		return cmdValidate(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "omniload: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "omniload: %v\n", err)
	return serve.ExitInfra
}

// parseMix parses "name=weight,name=weight" (a bare name means
// weight 1).
func parseMix(s string) (load.Mix, error) {
	if s == "" {
		return nil, nil
	}
	m := load.Mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, ok := strings.Cut(part, "=")
		w := 1.0
		if ok {
			var err error
			w, err = strconv.ParseFloat(ws, 64)
			if err != nil {
				return nil, fmt.Errorf("bad weight in %q: %v", part, err)
			}
		}
		m[name] = w
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return m, nil
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("omniload run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "omniserved base URL (empty: boot an in-process server)")
	addrs := fs.String("addrs", "", "comma-separated cluster member URLs (hash-routed with failover)")
	clusterN := fs.Int("cluster", 0, "boot an in-process N-node cluster and drive it")
	mode := fs.String("mode", "closed", "load mode: closed (N clients) or open (fixed rate)")
	clients := fs.Int("clients", 8, "closed-loop concurrent clients")
	rate := fs.Float64("rate", 100, "open-loop arrivals per second")
	jobs := fs.Int("jobs", 100, "total jobs (fixed count keeps seeded runs reproducible)")
	seed := fs.Int64("seed", 1, "schedule seed")
	mix := fs.String("mix", "", "workload mix, e.g. trivload=4,li=1,compress=1 (default: trivload=4 + each SPEC=1)")
	targets := fs.String("targets", "", "target mix, e.g. mips=1,x86=1 (default: uniform over all four)")
	scale := fs.Int("scale", 1, "SPEC workload SCALE override (<0 keeps built-in size)")
	deadlineMs := fs.Int("deadline-ms", 10000, "per-request deadline")
	prewarm := fs.Bool("prewarm", false, "run one untimed job per (workload,target) pair first")
	check := fs.Bool("check", false, "interpreter parity check on every job")
	noSFI := fs.Bool("no-sfi", false, "run unsandboxed")
	allocs := fs.Bool("allocs", false, "also run the host-lifecycle allocation benchmarks")
	out := fs.String("out", "", "write the JSON report here (e.g. BENCH_0.json)")
	workers := fs.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
	queueCap := fs.Int("queue", 0, "in-process server admission queue cap (0 = default)")
	auditMode := fs.String("audit", netserve.AuditOff,
		"in-process server admission audit: off, warn or enforce (warn measures audit-on overhead without gating)")
	quiet := fs.Bool("quiet", false, "suppress the human-readable summary")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	wmix, err := parseMix(*mix)
	if err != nil {
		return fail(stderr, fmt.Errorf("-mix: %w", err))
	}
	tmix, err := parseMix(*targets)
	if err != nil {
		return fail(stderr, fmt.Errorf("-targets: %w", err))
	}

	var memberAddrs []string
	if *addrs != "" {
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				memberAddrs = append(memberAddrs, a)
			}
		}
	}
	if *clusterN > 0 && (len(memberAddrs) > 0 || *addr != "") {
		return fail(stderr, fmt.Errorf("-cluster is exclusive with -addr/-addrs"))
	}
	if len(memberAddrs) > 0 && *addr != "" {
		return fail(stderr, fmt.Errorf("-addr and -addrs are exclusive"))
	}

	cfg := load.Config{
		Addr:       *addr,
		Addrs:      memberAddrs,
		Mode:       *mode,
		Clients:    *clients,
		Rate:       *rate,
		Jobs:       *jobs,
		Seed:       *seed,
		Workloads:  wmix,
		Targets:    tmix,
		Scale:      *scale,
		NoSFI:      *noSFI,
		DeadlineMs: *deadlineMs,
		Prewarm:    *prewarm,
		Check:      *check,
	}
	if *auditMode != netserve.AuditOff {
		cfg.Audit = *auditMode
	}
	bootOpts := load.BootOpts{
		Workers:  *workers,
		QueueCap: *queueCap,
		Audit:    netserve.AuditConfig{Mode: *auditMode},
	}
	switch {
	case *clusterN > 0:
		b, err := load.BootCluster(*clusterN, bootOpts)
		if err != nil {
			return fail(stderr, err)
		}
		defer b.Close()
		cfg.Addrs = b.Addrs
		fmt.Fprintf(stderr, "omniload: booted in-process %d-node cluster at %s\n",
			*clusterN, strings.Join(b.Addrs, " "))
	case cfg.Addr == "" && len(cfg.Addrs) == 0:
		b, err := load.Boot(bootOpts)
		if err != nil {
			return fail(stderr, err)
		}
		defer b.Close()
		cfg.Addr = b.Base
		fmt.Fprintf(stderr, "omniload: booted in-process server at %s\n", b.Base)
	}

	start := time.Now()
	rep, err := load.Run(cfg)
	if err != nil {
		return fail(stderr, err)
	}
	if *allocs {
		stats, err := load.MeasureAllocs()
		if err != nil {
			return fail(stderr, err)
		}
		rep.Allocs = stats
	}
	if err := load.Validate(rep); err != nil {
		return fail(stderr, err)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fail(stderr, err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stderr, "omniload: wrote %s\n", *out)
	}
	if !*quiet {
		fmt.Fprint(stdout, load.Format(rep))
		fmt.Fprintf(stderr, "omniload: done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if rep.Load.Parity > 0 {
		// Parity loss is a system failure, never a module failure.
		fmt.Fprintf(stderr, "omniload: %d parity failures\n", rep.Load.Parity)
		return serve.ExitInfra
	}
	if rep.Load.Faults > 0 || rep.Load.Errors > 0 {
		return serve.ExitFaults
	}
	return serve.ExitOK
}

func cmdValidate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("omniload validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strict := fs.Bool("strict", false, "also fail on any fault, error, or parity loss")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "omniload validate: exactly one report file")
		return serve.ExitInfra
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	var rep load.Report
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fail(stderr, fmt.Errorf("%s: %w", fs.Arg(0), err))
	}
	if err := load.Validate(&rep); err != nil {
		return fail(stderr, fmt.Errorf("%s: %w", fs.Arg(0), err))
	}
	if *strict {
		if rep.Load.Faults > 0 || rep.Load.Errors > 0 || rep.Load.Parity > 0 {
			fmt.Fprintf(stderr, "omniload: %s: strict: faults=%d errors=%d parity_failures=%d\n",
				fs.Arg(0), rep.Load.Faults, rep.Load.Errors, rep.Load.Parity)
			return serve.ExitFaults
		}
	}
	fmt.Fprintf(stdout, "%s: valid (%s, %d jobs, %.1f jobs/sec)\n",
		fs.Arg(0), rep.Schema, rep.Load.Jobs, rep.Load.JobsPerSec)
	return serve.ExitOK
}
