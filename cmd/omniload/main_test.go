package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omniware/internal/load"
	"omniware/internal/serve"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// One full CLI pass: run a tiny in-process load, emit the JSON
// artifact, then validate it with the validate subcommand — the exact
// sequence the CI smoke job performs.
func TestRunThenValidate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_t.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"run",
		"-jobs", "8", "-clients", "2", "-seed", "3",
		"-mix", "trivload", "-targets", "mips,x86",
		"-prewarm", "-check",
		"-out", out,
	}, &stdout, &stderr)
	if code != serve.ExitOK {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "jobs/sec") {
		t.Fatalf("no summary printed:\n%s", stdout.String())
	}

	var rep load.Report
	data := readFile(t, out)
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != load.Schema || rep.Load.Jobs != 8 {
		t.Fatalf("artifact: %+v", rep)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"validate", "-strict", out}, &stdout, &stderr); code != serve.ExitOK {
		t.Fatalf("validate exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "valid") {
		t.Fatalf("validate output: %s", stdout.String())
	}

	// Corrupt the artifact; strict validation must notice.
	data = bytes.Replace(data, []byte(`"schema": "`+load.Schema+`"`), []byte(`"schema": "omniload/v9"`), 1)
	bad := filepath.Join(t.TempDir(), "BAD.json")
	writeFile(t, bad, data)
	if code := run([]string{"validate", bad}, &stdout, &stderr); code != serve.ExitInfra {
		t.Fatalf("corrupt report validated, exit %d", code)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-mix", "li=x"}, &stdout, &stderr); code != serve.ExitInfra {
		t.Fatalf("bad mix accepted, exit %d", code)
	}
	if code := run([]string{"frobnicate"}, &stdout, &stderr); code != serve.ExitInfra {
		t.Fatal("unknown command accepted")
	}
	if code := run(nil, &stdout, &stderr); code != serve.ExitInfra {
		t.Fatal("no command accepted")
	}
}
