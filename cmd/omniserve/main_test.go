package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Script-free smoke tests: re-execute the test binary as the real
// command (smokeEnv gates the dispatch in TestMain) and check streams
// and exit codes.
const smokeEnv = "OMNISERVE_SMOKE_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(smokeEnv) == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runCmd(t *testing.T, args ...string) (exitCode int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), smokeEnv+"=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return code, out.String(), errb.String()
}

func TestNoModeSelected(t *testing.T) {
	code, _, stderr := runCmd(t)
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "exactly one of -demo or -manifest") {
		t.Errorf("stderr %q", stderr)
	}
}

func TestUnknownWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"jobs":[{"workload":"nosuch"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Infrastructure failure (a bad manifest), not a contained fault:
	// exit 2, not 1.
	if code, _, stderr := runCmd(t, "-manifest", path); code != 2 || !strings.Contains(stderr, "nosuch") {
		t.Errorf("exit %d, stderr %q", code, stderr)
	}
}

// A manifest of clean jobs is the exit-0 case: the service ran, every
// job exited cleanly, parity held.
func TestCleanManifestExitsZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.json")
	manifest := `{"jobs":[{"workload":"trivload","repeat":2}]}`
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCmd(t, "-manifest", path, "-json", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var rep struct {
		Jobs []struct {
			Status string `json:"status"`
			Parity bool   `json:"parity"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(rep.Jobs) != 8 {
		t.Fatalf("got %d jobs, want 8", len(rep.Jobs))
	}
	for _, j := range rep.Jobs {
		if j.Status != "ok" || !j.Parity {
			t.Errorf("job %+v", j)
		}
	}
}

// A manifest of wild modules: every job must fault, every fault must
// be contained, and parity still holds because the interpreter
// reference faults too. Exercises -manifest, target fan-out and -json
// end to end while staying cheap enough for -short runs.
func TestManifestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	manifest := `{"jobs":[{"workload":"wildload","repeat":2}]}`
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	// Every job faults (contained), parity holds: exit 1, the
	// "service fine, jobs faulted" code.
	code, out, stderr := runCmd(t, "-manifest", path, "-json", "-workers", "2")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	var rep struct {
		Jobs []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
			Parity bool   `json:"parity"`
		} `json:"jobs"`
		Metrics struct {
			JobsFailed      uint64 `json:"jobs_failed"`
			FaultsContained uint64 `json:"faults_contained"`
			CacheMisses     uint64 `json:"cache_misses"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(rep.Jobs) != 8 { // 1 workload x 4 targets x 2 reps
		t.Fatalf("got %d jobs, want 8", len(rep.Jobs))
	}
	for _, j := range rep.Jobs {
		if j.Status != "fault(contained)" || !j.Parity {
			t.Errorf("job %s: %+v", j.ID, j)
		}
	}
	if rep.Metrics.JobsFailed != 8 || rep.Metrics.FaultsContained != 8 || rep.Metrics.CacheMisses != 4 {
		t.Errorf("metrics %+v", rep.Metrics)
	}
}

// The full demo manifest end to end: 49 jobs over four workloads and
// four targets, every clean job matching the interpreter, the wild
// module contained, and the shared cache earning a >50% hit rate.
func TestDemoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("demo run skipped in -short mode")
	}
	// The demo mix includes one wildload fault, so the run reports
	// exit 1 (contained faults) rather than 0.
	code, out, stderr := runCmd(t, "-demo", "-workers", "8")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("parity failure in summary:\n%s", out)
	}
	for _, want := range []string{
		"49 jobs", "fault(contained)", "jobs_run           48",
		"jobs_failed        1", "faults_contained   1",
		"cache_misses       17", "cache_hit_rate     0.65",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}
