// omniserve is the batch module-hosting driver: it reads a job
// manifest (or generates the built-in demo), runs every job through
// the internal/serve worker pool against one shared verified
// translation cache, checks each clean run against the OmniVM
// interpreter, and prints a deterministic per-job summary plus the
// server's metrics.
//
// Usage:
//
//	omniserve -demo [-workers n] [-scale n] [-cache-mb n] [-json]
//	omniserve -manifest jobs.json [flags]
//
// A manifest is JSON:
//
//	{"jobs": [
//	  {"workload": "li", "target": "mips", "repeat": 3},
//	  {"workload": "wildload", "target": "x86", "timeoutMs": 2000}
//	]}
//
// Workloads are the four paper benchmarks (li, compress, alvinn,
// eqntott) plus two built-ins: "wildload", a deliberately faulting
// module whose wild load must fail its own job and nothing else, and
// "trivload", a trivially clean module for exercising the serving
// path itself. An empty "target" fans the spec out across all four
// machines.
//
// Exit codes (serve.ExitOK/ExitFaults/ExitInfra, shared with omnictl):
// 0 when every job ran cleanly with interpreter parity; 1 when some
// jobs faulted or failed but every fault was contained and parity
// held; 2 for infrastructure failure — bad flags, unreadable or
// invalid manifests, build errors, or parity loss (a run that
// diverges from the interpreter means the system, not the module, is
// wrong).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"omniware/internal/bench"
	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/ovm"
	"omniware/internal/serve"
	"omniware/internal/serve/metrics"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// wildLoadSrc is the injected-fault workload: SFI sandboxes stores, so
// an out-of-segment *load* is the fault a sandboxed module can still
// commit — on the interpreter and on every translated target alike.
const wildLoadSrc = `
int main(void) {
	int *p = (int *)0x70000000;
	return *p;
}`

// trivLoadSrc is the trivially clean built-in workload: it exists so
// manifests (and tests) can exercise the serving path with a job that
// must exit 0 — the clean-service case behind exit code ExitOK.
const trivLoadSrc = `
int main(void) {
	return 0;
}`

type jobSpec struct {
	ID        string `json:"id"`        // default: workload/target/rep
	Workload  string `json:"workload"`  // li|compress|alvinn|eqntott|wildload|trivload
	Target    string `json:"target"`    // mips|sparc|ppc|x86; "" = all four
	Scale     int    `json:"scale"`     // workload scale (0 = -scale flag)
	Repeat    int    `json:"repeat"`    // copies of this job (0 = 1)
	SFI       *bool  `json:"sfi"`       // null = true
	MaxSteps  uint64 `json:"maxSteps"`  // instruction budget (0 = default)
	TimeoutMs int    `json:"timeoutMs"` // per-job deadline (0 = none)
}

type manifest struct {
	Jobs []jobSpec `json:"jobs"`
}

// demoManifest is the built-in workload mix: every benchmark on every
// target three times over (so the cache earns its keep), plus one
// wild module that must fault without disturbing its 48 neighbors.
func demoManifest() manifest {
	var m manifest
	for _, w := range bench.WorkloadNames {
		m.Jobs = append(m.Jobs, jobSpec{Workload: w, Repeat: 3})
	}
	m.Jobs = append(m.Jobs, jobSpec{Workload: "wildload", Target: "mips"})
	return m
}

// workload is one compiled module plus its interpreter reference — the
// oracle every served run of that module is compared against.
type workload struct {
	mod     *ovm.Module
	exit    int32
	out     string
	faulted bool
}

func buildWorkload(name string, scale int) (*workload, error) {
	var files []core.SourceFile
	if name == "wildload" {
		files = []core.SourceFile{{Name: "wildload.c", Src: wildLoadSrc}}
	} else if name == "trivload" {
		files = []core.SourceFile{{Name: "trivload.c", Src: trivLoadSrc}}
	} else {
		var err error
		if files, err = bench.Sources(name, scale); err != nil {
			return nil, err
		}
	}
	mod, err := core.BuildC(files, cc.Options{OptLevel: 2})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	h, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	res, err := h.RunInterp()
	if err != nil {
		return nil, fmt.Errorf("%s: interpreter reference: %w", name, err)
	}
	return &workload{mod: mod, exit: res.ExitCode, out: h.Output(), faulted: res.Faulted}, nil
}

type jobReport struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Target   string `json:"target"`
	Status   string `json:"status"` // ok | fault(contained) | error
	Exit     int32  `json:"exit"`
	Parity   bool   `json:"parity"`
	Insts    uint64 `json:"insts"`
	Cycles   uint64 `json:"cycles"`
	Err      string `json:"err,omitempty"`
	// SandboxPct is the share of the job's dynamic instructions spent
	// on SFI checks — the per-job overhead-attribution number.
	SandboxPct float64 `json:"sandboxPct"`
}

type report struct {
	Jobs    []jobReport      `json:"jobs"`
	Metrics metrics.Snapshot `json:"metrics"`
}

func main() {
	demo := flag.Bool("demo", false, "run the built-in demo manifest")
	manifestPath := flag.String("manifest", "", "JSON job manifest to run")
	workers := flag.Int("workers", 4, "worker goroutines")
	scale := flag.Int("scale", 1, "default workload scale (0 = full size)")
	cacheMB := flag.Int("cache-mb", 64, "translation cache budget in MiB")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	var m manifest
	switch {
	case *demo && *manifestPath == "":
		m = demoManifest()
	case !*demo && *manifestPath != "":
		raw, err := os.ReadFile(*manifestPath)
		if err != nil {
			fail(err)
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			fail(fmt.Errorf("%s: %w", *manifestPath, err))
		}
	default:
		fmt.Fprintln(os.Stderr, "omniserve: pass exactly one of -demo or -manifest")
		os.Exit(serve.ExitInfra)
	}
	if len(m.Jobs) == 0 {
		fail(fmt.Errorf("manifest has no jobs"))
	}

	// Compile each distinct (workload, scale) once and pin its
	// interpreter outcome before any worker runs.
	type wkey struct {
		name  string
		scale int
	}
	loads := map[wkey]*workload{}
	var jobs []serve.Job
	meta := map[string]*jobReport{}
	oracle := map[string]*workload{}
	var order []string
	for _, spec := range m.Jobs {
		sc := spec.Scale
		if sc == 0 {
			sc = *scale
		}
		k := wkey{spec.Workload, sc}
		if loads[k] == nil {
			fmt.Fprintf(os.Stderr, "building %s (scale %d)...\n", spec.Workload, sc)
			w, err := buildWorkload(spec.Workload, sc)
			if err != nil {
				fail(err)
			}
			loads[k] = w
		}
		machines := target.Machines()
		if spec.Target != "" {
			mach := target.ByName(spec.Target)
			if mach == nil {
				fail(fmt.Errorf("unknown target %q", spec.Target))
			}
			machines = []*target.Machine{mach}
		}
		reps := spec.Repeat
		if reps <= 0 {
			reps = 1
		}
		sfi := spec.SFI == nil || *spec.SFI
		for _, mach := range machines {
			for rep := 0; rep < reps; rep++ {
				id := spec.ID
				if id == "" {
					id = fmt.Sprintf("%s/%s/%d", spec.Workload, mach.Name, rep)
				} else if reps > 1 {
					id = fmt.Sprintf("%s/%d", id, rep)
				}
				if meta[id] != nil {
					fail(fmt.Errorf("duplicate job id %q", id))
				}
				jobs = append(jobs, serve.Job{
					ID:       id,
					Mod:      loads[k].mod,
					Machine:  mach,
					Opt:      translate.Paper(sfi),
					MaxSteps: spec.MaxSteps,
					Timeout:  time.Duration(spec.TimeoutMs) * time.Millisecond,
				})
				meta[id] = &jobReport{ID: id, Workload: spec.Workload, Target: mach.Name}
				oracle[id] = loads[k]
				order = append(order, id)
			}
		}
	}

	srv := serve.New(serve.Config{
		Workers: *workers,
		Cache:   mcache.New(int64(*cacheMB) << 20),
	})
	fmt.Fprintf(os.Stderr, "running %d jobs on %d workers...\n", len(jobs), *workers)
	results := srv.Run(jobs)
	srv.Close()

	// Score each result against its workload's interpreter oracle. A
	// faulting reference (wildload) matches on containment alone: both
	// engines must fault, and exit codes of dead runs are not compared.
	parityOK := true
	anyFailed := false
	rep := report{Metrics: srv.Snapshot()}
	byID := map[string]serve.Result{}
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, id := range order {
		jr := meta[id]
		r := byID[id]
		w := oracle[id]
		switch {
		case r.Err != nil:
			jr.Status, jr.Err, jr.Parity = "error", r.Err.Error(), false
		case r.Faulted:
			jr.Status = "fault(contained)"
			jr.Parity = w.faulted
		default:
			jr.Status = "ok"
			jr.Exit = r.ExitCode
			jr.Parity = !w.faulted && r.ExitCode == w.exit && r.Output == w.out
		}
		jr.Insts, jr.Cycles = r.Insts, r.Cycles
		jr.SandboxPct = r.Attr.SandboxPct()
		if !jr.Parity {
			parityOK = false
		}
		if jr.Status != "ok" {
			anyFailed = true
		}
		rep.Jobs = append(rep.Jobs, *jr)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	} else {
		tbl := &bench.Table{
			Title:  fmt.Sprintf("omniserve: %d jobs, %d workers", len(jobs), *workers),
			Header: []string{"job", "workload", "target", "status", "exit", "parity", "insts", "sandbox%"},
		}
		for _, jr := range rep.Jobs {
			parity := "ok"
			if !jr.Parity {
				parity = "FAIL"
			}
			tbl.Rows = append(tbl.Rows, []string{
				jr.ID, jr.Workload, jr.Target, jr.Status,
				fmt.Sprint(jr.Exit), parity, fmt.Sprint(jr.Insts),
				fmt.Sprintf("%.2f", jr.SandboxPct),
			})
		}
		fmt.Println(tbl)
		fmt.Print(rep.Metrics.Text())
	}
	// Exit-code contract (see serve.ExitOK and friends): parity loss is
	// an infrastructure failure; contained faults are the service
	// working as designed, but the caller still learns about them.
	switch {
	case !parityOK:
		fmt.Fprintln(os.Stderr, "omniserve: parity FAILED")
		os.Exit(serve.ExitInfra)
	case anyFailed:
		os.Exit(serve.ExitFaults)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "omniserve: %v\n", err)
	os.Exit(serve.ExitInfra)
}
