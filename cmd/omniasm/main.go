// omniasm assembles OmniVM assembly into relocatable object files.
//
// Usage:
//
//	omniasm [-o out.omo] file.s...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"omniware/internal/asm"
)

func main() {
	out := flag.String("o", "", "output file (single input only)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "omniasm: no input files")
		os.Exit(2)
	}
	if *out != "" && flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "omniasm: -o with multiple inputs")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		obj, err := asm.Assemble(filepath.Base(path), string(src))
		if err != nil {
			fail(err)
		}
		name := strings.TrimSuffix(path, filepath.Ext(path)) + ".omo"
		if *out != "" {
			name = *out
		}
		if err := os.WriteFile(name, obj.Encode(), 0o644); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "omniasm: %v\n", err)
	os.Exit(1)
}
