// omnicc compiles OmniC source files to OmniVM assembly or object
// files — the role the retargeted gcc/lcc played for Omniware.
//
// Usage:
//
//	omnicc [-S] [-O level] [-regs n] [-o out] file.c...
//
// With -S the output is OmniVM assembly; otherwise each input is
// assembled into an OmniVM object file (.omo). With multiple inputs,
// -o names a directory (or is ignored in favour of per-input names).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"omniware/internal/asm"
	"omniware/internal/cc"
)

func main() {
	emitAsm := flag.Bool("S", false, "emit OmniVM assembly instead of an object file")
	optLevel := flag.Int("O", 2, "optimization level (0-2)")
	regs := flag.Int("regs", 16, "OmniVM integer register file size (8-16)")
	out := flag.String("o", "", "output file (single input only)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "omnicc: no input files")
		os.Exit(2)
	}
	if *out != "" && flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "omnicc: -o with multiple inputs")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		res, err := cc.Compile(filepath.Base(path), string(src), cc.Options{
			OptLevel:   *optLevel,
			IntRegFile: *regs,
		})
		if err != nil {
			fail(err)
		}
		base := strings.TrimSuffix(path, filepath.Ext(path))
		if *emitAsm {
			name := base + ".s"
			if *out != "" {
				name = *out
			}
			if err := os.WriteFile(name, []byte(res.Asm), 0o644); err != nil {
				fail(err)
			}
			continue
		}
		obj, err := asm.Assemble(filepath.Base(path)+".s", res.Asm)
		if err != nil {
			fail(err)
		}
		name := base + ".omo"
		if *out != "" {
			name = *out
		}
		if err := os.WriteFile(name, obj.Encode(), 0o644); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "omnicc: %v\n", err)
	os.Exit(1)
}
