// omnirun is the host program: it loads an OmniVM module into a
// segmented address space and executes it — by abstract-machine
// interpretation or by load-time translation (with SFI) to one of the
// four simulated targets.
//
// Usage:
//
//	omnirun [-target interp|mips|sparc|ppc|x86] [-sfi] [-noopt] [-stats] module.omx
package main

import (
	"flag"
	"fmt"
	"os"

	"omniware"
	"omniware/internal/target"
	"omniware/internal/translate"
)

func main() {
	tgt := flag.String("target", "interp", "execution target: interp, mips, sparc, ppc, x86")
	sfi := flag.Bool("sfi", true, "enable software fault isolation (translated targets)")
	noopt := flag.Bool("noopt", false, "disable translator optimizations")
	stats := flag.Bool("stats", false, "print execution statistics")
	maxSteps := flag.Uint64("max-steps", 0, "instruction budget (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: omnirun [flags] module.omx")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	mod, err := omniware.DecodeModule(data)
	if err != nil {
		fail(err)
	}
	host, err := omniware.NewHost(mod, omniware.RunConfig{Out: os.Stdout, MaxSteps: *maxSteps})
	if err != nil {
		fail(err)
	}

	if *tgt == "interp" {
		res, err := host.RunInterp()
		if err != nil {
			fail(err)
		}
		if res.Faulted {
			fmt.Fprintf(os.Stderr, "omnirun: module fault: %s\n", res.Fault)
			os.Exit(3)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "exit=%d instructions=%d cycles=%d\n", res.ExitCode, res.Steps, res.Cycles)
		}
		os.Exit(int(res.ExitCode & 0xff))
	}

	mach := omniware.MachineByName(*tgt)
	if mach == nil {
		fmt.Fprintf(os.Stderr, "omnirun: unknown target %q\n", *tgt)
		os.Exit(2)
	}
	opts := omniware.PaperOptions(*sfi)
	if *noopt {
		opts = translate.Options{SFI: *sfi}
	}
	res, prog, err := host.RunTranslated(mach, opts)
	if err != nil {
		fail(err)
	}
	if res.Faulted {
		fmt.Fprintf(os.Stderr, "omnirun: module fault: %s\n", res.Fault)
		os.Exit(3)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "exit=%d instructions=%d cycles=%d translated=%d native insts\n",
			res.ExitCode, res.Insts, res.Cycles, len(prog.Code))
		for c := target.ExpCat(0); c < target.NumCats; c++ {
			fmt.Fprintf(os.Stderr, "  %-5s %d\n", c, res.Counts[c])
		}
	}
	os.Exit(int(res.ExitCode & 0xff))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "omnirun: %v\n", err)
	os.Exit(1)
}
