package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"omniware"
)

// The smoke tests exercise the command end to end without shell
// scripts: when the test binary is re-executed with smokeEnv set, it
// runs the real main() on the given arguments; the tests drive it with
// exec.Command and check exit codes and streams.
const smokeEnv = "OMNIRUN_SMOKE_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(smokeEnv) == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// buildModule compiles src and writes the encoded .omx to a temp file.
func buildModule(t *testing.T, src string) string {
	t.Helper()
	mod, err := omniware.BuildC(
		[]omniware.SourceFile{{Name: "p.c", Src: src}},
		omniware.CompilerOptions{OptLevel: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.omx")
	if err := os.WriteFile(path, mod.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (exitCode int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), smokeEnv+"=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return code, out.String(), errb.String()
}

const helloSrc = `
int main(void) {
	_puts("hello from the module\n");
	return 42;
}`

func TestRunInterp(t *testing.T) {
	mod := buildModule(t, helloSrc)
	code, out, _ := runCmd(t, "-target", "interp", mod)
	if code != 42 {
		t.Errorf("exit %d, want 42", code)
	}
	if !strings.Contains(out, "hello from the module") {
		t.Errorf("stdout %q", out)
	}
}

func TestRunTranslatedAllTargets(t *testing.T) {
	mod := buildModule(t, helloSrc)
	for _, tgt := range []string{"mips", "sparc", "ppc", "x86"} {
		code, out, stderr := runCmd(t, "-target", tgt, "-stats", mod)
		if code != 42 {
			t.Errorf("%s: exit %d, want 42", tgt, code)
		}
		if !strings.Contains(out, "hello from the module") {
			t.Errorf("%s: stdout %q", tgt, out)
		}
		if !strings.Contains(stderr, "cycles=") || !strings.Contains(stderr, "native insts") {
			t.Errorf("%s: missing stats on stderr: %q", tgt, stderr)
		}
	}
}

const wildStoreSrc = `
int main(void) {
	*(int *)0x70000000 = 1;
	return 0;
}`

func TestRunFaultExitCode(t *testing.T) {
	mod := buildModule(t, wildStoreSrc)
	// Unsandboxed, the wild store is a module fault: exit 3.
	code, _, stderr := runCmd(t, "-target", "mips", "-sfi=false", mod)
	if code != 3 {
		t.Errorf("exit %d, want 3", code)
	}
	if !strings.Contains(stderr, "module fault") {
		t.Errorf("stderr %q", stderr)
	}
	// With SFI the store is sandboxed into the module's own segment
	// and the program runs to completion.
	code, _, _ = runCmd(t, "-target", "mips", "-sfi=true", mod)
	if code != 0 {
		t.Errorf("SFI run: exit %d, want 0", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	mod := buildModule(t, helloSrc)
	if code, _, _ := runCmd(t, "-target", "vax", mod); code != 2 {
		t.Errorf("unknown target: exit %d, want 2", code)
	}
	if code, _, _ := runCmd(t); code != 2 {
		t.Errorf("missing module: exit %d, want 2", code)
	}
	if code, _, _ := runCmd(t, filepath.Join(t.TempDir(), "missing.omx")); code != 1 {
		t.Errorf("unreadable module: exit %d, want 1", code)
	}
}
