// omnild links OmniVM object files into an executable module (.omx),
// the unit of mobile code a host loads and translates.
//
// Usage:
//
//	omnild [-o out.omx] [-entry sym] [-nocrt0] file.omo...
package main

import (
	"flag"
	"fmt"
	"os"

	"omniware/internal/asm"
	"omniware/internal/cc"
	"omniware/internal/link"
	"omniware/internal/ovm"
)

func main() {
	out := flag.String("o", "a.omx", "output module")
	entry := flag.String("entry", "", "entry symbol (default _start, then main)")
	noCrt := flag.Bool("nocrt0", false, "do not link the startup stub")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "omnild: no input files")
		os.Exit(2)
	}
	var objs []*ovm.Object
	if !*noCrt {
		crt, err := asm.Assemble("crt0.s", cc.Crt0)
		if err != nil {
			fail(err)
		}
		objs = append(objs, crt)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		obj, err := ovm.DecodeObject(data)
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		objs = append(objs, obj)
	}
	mod, err := link.Link(objs, link.Options{Entry: *entry})
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, mod.Encode(), 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "omnild: %v\n", err)
	os.Exit(1)
}
