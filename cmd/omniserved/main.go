// omniserved is the network module-hosting daemon: an HTTP front door
// (internal/netserve) over the internal/serve worker pool, with the
// verified translation cache optionally backed by a persistent disk
// tier (internal/mcache/diskstore) so warm capacity survives
// restarts.
//
// Usage:
//
//	omniserved [-addr host:port] [-workers n] [-queue n]
//	           [-cache-mb n] [-cache-dir path]
//	           [-rate r] [-burst n] [-max-modules n]
//	           [-deadline-ms n] [-max-deadline-ms n]
//	           [-audit off|warn|enforce]
//	           [-audit-max-stack bytes] [-audit-max-cost cycles]
//	           [-audit-caps name,name,...]
//	           [-debug-addr host:port]
//	           [-cluster-self URL -cluster-members URL,URL,...]
//	           [-cluster-secret s] [-cluster-fanout n] [-cluster-hot-k n]
//	           [-cluster-replicate-ms n]
//
// With -cluster-members (a static member list shared by every node,
// including this node's own -cluster-self URL), the daemon joins an
// omnicluster: translation-cache misses probe the module's ring
// owners over GET /v1/peer/translation before retranslating, every
// arriving artifact is re-verified locally before admission, and hot
// translations are pushed to their owners each replication round.
// Cluster mode requires a shared peer-auth secret — the same value on
// every member, via -cluster-secret or the OMNI_CLUSTER_SECRET
// environment variable (preferred: the environment keeps it out of
// process listings) — which gates every /v1/peer/* request.
//
// The daemon prints "listening on ADDR" to stderr once the socket is
// bound (pass -addr 127.0.0.1:0 to let the kernel pick a free port —
// the printed line is how scripts learn it). SIGINT/SIGTERM starts a
// graceful drain: /healthz flips to 503, new work is refused,
// in-flight jobs run to completion, then the process exits 0. A
// second signal aborts immediately.
//
// Endpoints (see internal/netserve): POST /v1/modules, POST /v1/exec,
// GET /v1/metrics, GET /v1/trace/{id}, GET /v1/trace/recent,
// GET /v1/trace/slow, GET /v1/cluster/metrics (any node aggregates
// the fleet — omnictl top's data source), GET /healthz. omnictl is
// the matching client.
//
// -debug-addr binds a second, operator-only listener serving the
// net/http/pprof endpoints (/debug/pprof/...) — kept off the public
// socket so profiling is never exposed to module-uploading clients.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"omniware/internal/cluster"
	"omniware/internal/mcache"
	"omniware/internal/mcache/diskstore"
	"omniware/internal/netserve"
	"omniware/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main minus the process exit, so tests can drive it.
func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("omniserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 = kernel-assigned)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue capacity")
	cacheMB := fs.Int("cache-mb", 64, "in-memory translation cache budget in MiB")
	cacheDir := fs.String("cache-dir", "", "persistent translation cache directory (empty = memory only)")
	rate := fs.Float64("rate", netserve.DefaultRate, "per-client request rate limit (req/s)")
	burst := fs.Float64("burst", netserve.DefaultBurst, "per-client burst allowance")
	maxModules := fs.Int("max-modules", netserve.DefaultMaxModules, "uploaded-module registry capacity")
	deadlineMs := fs.Int("deadline-ms", int(netserve.DefaultDeadline/time.Millisecond), "default per-request deadline")
	maxDeadlineMs := fs.Int("max-deadline-ms", int(netserve.DefaultMaxDeadline/time.Millisecond), "cap on client-requested deadlines")
	auditMode := fs.String("audit", netserve.AuditOff, "admission-time static-analysis gate: off, warn or enforce")
	auditMaxStack := fs.Int64("audit-max-stack", 0, "cap on the proven worst-case stack depth in bytes (0 = no cap)")
	auditMaxCost := fs.Uint64("audit-max-cost", 0, "cap on the whole-module static cycle bound per target (0 = no cap)")
	auditCaps := fs.String("audit-caps", "", "comma-separated host-call allow-list (empty = unrestricted)")
	debugAddr := fs.String("debug-addr", "", "pprof listener address (empty = disabled)")
	clusterSelf := fs.String("cluster-self", "", "this node's base URL as peers reach it (e.g. http://10.0.0.1:8080)")
	clusterMembers := fs.String("cluster-members", "", "comma-separated member base URLs, including self")
	clusterSecret := fs.String("cluster-secret", os.Getenv("OMNI_CLUSTER_SECRET"),
		"shared peer-auth secret, same on every member (default $OMNI_CLUSTER_SECRET); required in cluster mode")
	clusterFanout := fs.Int("cluster-fanout", 0, "ring owners per module (0 = default 2)")
	clusterHotK := fs.Int("cluster-hot-k", 0, "hot translations replicated per round (0 = default)")
	clusterReplicateMs := fs.Int("cluster-replicate-ms", 0, "hot-module replication interval (0 = default, <0 = off)")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "omniserved: "+format+"\n", a...)
	}

	cacheCfg := mcache.Config{Limit: int64(*cacheMB) << 20, Logf: logf}
	if *cacheDir != "" {
		store, err := diskstore.Open(*cacheDir)
		if err != nil {
			logf("opening cache dir: %v", err)
			return serve.ExitInfra
		}
		cacheCfg.Disk = store
		if n, bytes, err := store.Len(); err == nil {
			logf("persistent cache: %s (%d entries, %d bytes)", store.Root(), n, bytes)
		} else {
			logf("persistent cache: %s", store.Root())
		}
	}

	// Cluster mode: the cluster engine becomes the cache's peer source
	// (misses probe ring owners before retranslating — every arrival
	// re-verified locally) and the HTTP layer's peer endpoint backend.
	var peers *cluster.Peers
	if *clusterMembers != "" {
		if *clusterSecret == "" {
			logf("cluster mode requires -cluster-secret (or OMNI_CLUSTER_SECRET): the same shared peer-auth secret on every member")
			return serve.ExitInfra
		}
		var members []string
		for _, m := range strings.Split(*clusterMembers, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		replicate := time.Duration(*clusterReplicateMs) * time.Millisecond
		if *clusterReplicateMs < 0 {
			replicate = -1
		}
		var err error
		peers, err = cluster.New(cluster.Config{
			Self:           *clusterSelf,
			Members:        members,
			Secret:         *clusterSecret,
			Fanout:         *clusterFanout,
			HotK:           *clusterHotK,
			ReplicateEvery: replicate,
			Logf:           logf,
		})
		if err != nil {
			logf("%v", err)
			return serve.ExitInfra
		}
		cacheCfg.Peer = peers
		logf("cluster: self=%s members=%d fanout=%d", peers.Self(), len(members), *clusterFanout)
	} else if *clusterSelf != "" {
		logf("-cluster-self requires -cluster-members")
		return serve.ExitInfra
	}

	cache := mcache.NewWith(cacheCfg)
	srv := serve.New(serve.Config{
		Workers:  *workers,
		QueueCap: *queue,
		Cache:    cache,
	})
	if peers != nil {
		srv.SetClusterSnapshot(peers.Snapshot)
	}
	netCfg := netserve.Config{
		Server:      srv,
		MaxModules:  *maxModules,
		Rate:        *rate,
		Burst:       *burst,
		Deadline:    time.Duration(*deadlineMs) * time.Millisecond,
		MaxDeadline: time.Duration(*maxDeadlineMs) * time.Millisecond,
		Audit: netserve.AuditConfig{
			Mode:          *auditMode,
			MaxStackBytes: *auditMaxStack,
			MaxCostCycles: *auditMaxCost,
		},
		Logf: logf,
	}
	if *auditCaps != "" {
		for _, c := range strings.Split(*auditCaps, ",") {
			if c = strings.TrimSpace(c); c != "" {
				netCfg.Audit.Capabilities = append(netCfg.Audit.Capabilities, c)
			}
		}
	}
	if netCfg.Audit.Mode != netserve.AuditOff {
		logf("audit gate: mode=%s max-stack=%d max-cost=%d caps=%v",
			netCfg.Audit.Mode, netCfg.Audit.MaxStackBytes, netCfg.Audit.MaxCostCycles, netCfg.Audit.Capabilities)
	}
	if peers != nil {
		// Assigned only when non-nil: a typed nil in the interface field
		// would enable the peer endpoints with no backend behind them.
		netCfg.Peer = peers
		netCfg.PeerAuth = *clusterSecret
	}
	h, err := netserve.New(netCfg)
	if err != nil {
		logf("%v", err)
		return serve.ExitInfra
	}
	if peers != nil {
		peers.Start(cache)
		defer peers.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		return serve.ExitInfra
	}
	logf("listening on %s", ln.Addr())

	if *debugAddr != "" {
		// The default ServeMux would work, but an explicit mux keeps the
		// debug surface to exactly the pprof family.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logf("debug listener: %v", err)
			return serve.ExitInfra
		}
		logf("debug listening on %s", dln.Addr())
		dbgSrv := &http.Server{Handler: dmux}
		defer dbgSrv.Close()
		go func() { _ = dbgSrv.Serve(dln) }()
	}

	httpSrv := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logf("%v: draining (in-flight jobs will finish)", s)
	case err := <-serveErr:
		logf("serve: %v", err)
		srv.Close()
		return serve.ExitInfra
	}

	// Graceful drain: stop advertising health, refuse new work, let
	// the HTTP layer finish responses in flight (each waits for its
	// job), then close the pool. A second signal cuts the wait short.
	h.SetDraining(true)
	done := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logf("shutdown: %v", err)
		}
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
		logf("drained")
		return serve.ExitOK
	case s := <-sig:
		logf("%v: aborting drain", s)
		_ = httpSrv.Close()
		return serve.ExitFaults
	}
}
