package main

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

var debugListenRE = regexp.MustCompile(`debug listening on (\S+)`)

// -debug-addr binds a second, operator-only listener serving the pprof
// family, kept off the public socket.
func TestDebugListenerServesPprof(t *testing.T) {
	d := startDaemon(t, "-debug-addr", "127.0.0.1:0")

	// The debug line is logged right after the main one; poll briefly
	// for the async stderr reader to deliver it.
	var debugAddr string
	deadline := time.Now().Add(5 * time.Second)
	for debugAddr == "" {
		if m := debugListenRE.FindStringSubmatch(d.stderr.String()); m != nil {
			debugAddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its debug address\n%s", d.stderr)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "debug-addr") {
		t.Fatalf("pprof cmdline does not echo the process args: %q", body)
	}

	idx, err := http.Get("http://" + debugAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Body.Close()
	if idx.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", idx.StatusCode)
	}

	// The public socket must NOT expose pprof.
	pub, err := http.Get("http://" + d.addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pub.Body.Close()
	if pub.StatusCode == http.StatusOK {
		t.Fatal("public socket serves pprof")
	}
}
