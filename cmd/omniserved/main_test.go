package main

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/netserve"
	"omniware/internal/target"
	"omniware/internal/wire"
)

// The daemon tests re-execute the test binary as the real command
// (smokeEnv gates the dispatch in TestMain) so signal handling, the
// listen socket and the drain path are exercised exactly as deployed.
const smokeEnv = "OMNISERVED_SMOKE_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(smokeEnv) == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// logBuf captures the daemon's stderr. Handing the subprocess a
// Writer (rather than racing a scanner against StderrPipe, which
// cmd.Wait closes with data still buffered) makes Wait itself the
// flush barrier: exec's copy goroutine is finished before Wait
// returns, so the last log lines — the drain messages the tests
// assert on — are never lost.
type logBuf struct {
	mu     sync.Mutex
	b      strings.Builder
	addrCh chan string
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	l.b.Write(p)
	s := l.b.String()
	l.mu.Unlock()
	if m := listenRE.FindStringSubmatch(s); m != nil {
		select {
		case l.addrCh <- m[1]:
		default:
		}
	}
	return len(p), nil
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// daemon is one running omniserved subprocess.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *logBuf
	waitCh chan error
}

// startDaemon boots omniserved on a kernel-assigned port and waits
// for its "listening on" line.
func startDaemon(t *testing.T, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), smokeEnv+"=1")
	d := &daemon{cmd: cmd, stderr: &logBuf{addrCh: make(chan string, 1)}, waitCh: make(chan error, 1)}
	cmd.Stderr = d.stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { d.waitCh <- cmd.Wait() }()
	select {
	case d.addr = <-d.stderr.addrCh:
	case err := <-d.waitCh:
		t.Fatalf("daemon exited before listening: %v\n%s", err, d.stderr)
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("daemon never reported its address\n%s", d.stderr)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			<-d.waitCh
		}
	})
	return d
}

func (d *daemon) client() *netserve.Client {
	return &netserve.Client{Base: "http://" + d.addr}
}

// sigterm sends SIGTERM and returns the exit code, failing the test
// if the daemon does not exit within the deadline.
func (d *daemon) sigterm(t *testing.T, deadline time.Duration) int {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.waitCh:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("daemon wait: %v", err)
	case <-time.After(deadline):
		_ = d.cmd.Process.Kill()
		t.Fatalf("daemon did not exit within %v of SIGTERM\n%s", deadline, d.stderr)
	}
	return -1
}

func buildBlob(t *testing.T, src string) []byte {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := wire.EncodeModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// Boot, upload, execute on every target with interpreter parity,
// read metrics, drain cleanly on SIGTERM: the daemon's whole life.
func TestDaemonLifecycle(t *testing.T) {
	d := startDaemon(t)
	cl := d.client()
	if err := cl.Health(); err != nil {
		t.Fatal(err)
	}
	blob := buildBlob(t, `int main(void){ int i, a = 0; for (i = 0; i < 9; i++) a += i; return a; }`)
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range target.Machines() {
		res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: m.Name, Check: true})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.Status != "ok" || res.Exit != 36 || res.Parity == nil || !*res.Parity {
			t.Fatalf("%s: %+v", m.Name, res)
		}
	}
	snap, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.JobsRun != 4 || snap.CacheMisses != 4 {
		t.Fatalf("metrics %+v", snap)
	}
	if code := d.sigterm(t, 15*time.Second); code != 0 {
		t.Fatalf("drain exit %d, want 0\n%s", code, d.stderr)
	}
	if !strings.Contains(d.stderr.String(), "drained") {
		t.Fatalf("no drain log:\n%s", d.stderr)
	}
}

// A daemon started with -cache-dir keeps its translations across a
// restart: the second incarnation serves the same module from the
// persistent tier without retranslating.
func TestDaemonPersistentCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	blob := buildBlob(t, `int g[4]; int main(void){ g[3] = 44; return g[3]; }`)

	d1 := startDaemon(t, "-cache-dir", dir)
	cl := d1.client()
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"}); err != nil || res.Exit != 44 {
		t.Fatalf("first run: %+v err=%v", res, err)
	}
	snap, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.CacheDiskWrites != 1 {
		t.Fatalf("first incarnation metrics %+v", snap)
	}
	if code := d1.sigterm(t, 15*time.Second); code != 0 {
		t.Fatalf("first drain exit %d\n%s", code, d1.stderr)
	}

	d2 := startDaemon(t, "-cache-dir", dir)
	cl2 := d2.client()
	up2, err := cl2.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if up2.Hash != up.Hash {
		t.Fatalf("module hash changed across restarts: %q vs %q", up2.Hash, up.Hash)
	}
	res, err := cl2.Exec(netserve.ExecRequest{Module: up2.Hash, Target: "mips", Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 44 || !res.Cached || res.Parity == nil || !*res.Parity {
		t.Fatalf("restarted run not served from the persistent tier: %+v", res)
	}
	snap2, err := cl2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.CacheDiskHits != 1 || snap2.CacheMisses != 0 {
		t.Fatalf("restarted metrics %+v", snap2)
	}
	if code := d2.sigterm(t, 15*time.Second); code != 0 {
		t.Fatalf("second drain exit %d\n%s", code, d2.stderr)
	}
}

// SIGTERM during an in-flight job: the drain waits for it, the
// client gets its full result, and the daemon exits 0 afterwards.
func TestDaemonDrainFinishesInFlight(t *testing.T) {
	d := startDaemon(t)
	cl := d.client()
	slow := buildBlob(t, `int main(void){ int i, a = 0; for (i = 0; i < 20000000; i++) a ^= i; return 9; }`)
	up, err := cl.Upload(slow)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *netserve.ExecResponse
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips", DeadlineMs: 30000})
		done <- outcome{res, err}
	}()
	// Wait until the job is actually in flight before pulling the
	// trigger.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := cl.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if snap.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("in-flight job lost to drain: %v", out.err)
	}
	if out.res.Status != "ok" || out.res.Exit != 9 {
		t.Fatalf("in-flight job: %+v", out.res)
	}
	select {
	case err := <-d.waitCh:
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatal(err)
		}
		if code != 0 {
			t.Fatalf("drain exit %d\n%s", code, d.stderr)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after drain\n%s", d.stderr)
	}
}

// Bad flags and unusable state are infrastructure errors: exit 2.
func TestDaemonInfraErrors(t *testing.T) {
	run := func(args ...string) (int, string) {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), smokeEnv+"=1")
		var errb strings.Builder
		cmd.Stderr = &errb
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatal(err)
		}
		return code, errb.String()
	}
	if code, _ := run("-no-such-flag"); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
	if code, stderr := run("-addr", "256.256.256.256:1"); code != 2 {
		t.Errorf("bad addr exit %d, want 2 (%s)", code, stderr)
	}
	// A cache dir that is actually a file.
	f := t.TempDir() + "/file"
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, stderr := run("-addr", "127.0.0.1:0", "-cache-dir", f+"/nope"); code != 2 {
		t.Errorf("bad cache dir exit %d, want 2 (%s)", code, stderr)
	}
}
