package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"omniware/internal/load"
)

// bench observes whatever ran inside its window: boot a server, run
// jobs while the window is open, and check the printed delta reflects
// them. The window is driven with real traffic via build/upload/exec.
func TestBenchSubcommand(t *testing.T) {
	addr := testServer(t)
	src := writeSrc(t, `int main(void){ return 0; }`)
	omw := filepath.Join(t.TempDir(), "prog.omw")
	if code, _, stderr := runCtl(t, "build", "-o", omw, src); code != 0 {
		t.Fatalf("build: %s", stderr)
	}
	code, stdout, stderr := runCtl(t, "upload", "-addr", addr, omw)
	if code != 0 {
		t.Fatalf("upload: %s", stderr)
	}
	var up struct{ Hash string }
	if err := json.Unmarshal([]byte(stdout), &up); err != nil {
		t.Fatal(err)
	}

	// Traffic happens before the window opens too; the delta must only
	// count what falls inside it, so run one job now...
	if code, _, stderr := runCtl(t, "exec", "-addr", addr, "-module", up.Hash, "-target", "mips"); code != 0 {
		t.Fatalf("exec: %s", stderr)
	}

	// ...then run two jobs inside a bench window driven concurrently.
	done := make(chan struct{})
	go func() {
		defer close(done)
		runCtl(t, "exec", "-addr", addr, "-module", up.Hash, "-target", "mips")
		runCtl(t, "exec", "-addr", addr, "-module", up.Hash, "-target", "x86")
	}()
	code, stdout, stderr = runCtl(t, "bench", "-addr", addr, "-duration", "3s")
	<-done
	if code != 0 {
		t.Fatalf("bench exit %d: %s", code, stderr)
	}
	for _, want := range []string{"window 3s", "server", "stage run"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("bench output missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stdout, "run=2 ") {
		t.Fatalf("window did not isolate the 2 in-window jobs:\n%s", stdout)
	}

	// -json emits the machine form: a load.ServerDelta.
	code, stdout, stderr = runCtl(t, "bench", "-addr", addr, "-duration", "1ms", "-json")
	if code != 0 {
		t.Fatalf("bench -json exit %d: %s", code, stderr)
	}
	var d load.ServerDelta
	if err := json.Unmarshal([]byte(stdout), &d); err != nil {
		t.Fatalf("bench -json output not a ServerDelta: %v\n%s", err, stdout)
	}
	if d.JobsRun != 0 {
		t.Fatalf("empty window counted %d jobs", d.JobsRun)
	}
}
