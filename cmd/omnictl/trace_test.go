package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"omniware/internal/netserve"
	"omniware/internal/target"
)

// omnictl trace renders the span tree of an executed job — the stage
// names from decode to execute with nonzero durations and the
// sandbox-overhead line — on every target.
func TestTraceSubcommand(t *testing.T) {
	addr := testServer(t)
	src := writeSrc(t, `
int buf[64];
int main(void) {
	int i;
	int *p = buf;
	for (i = 0; i < 40; i++) p[i] = i;
	return 0;
}`)
	omw := filepath.Join(t.TempDir(), "stores.omw")
	if code, _, stderr := runCtl(t, "build", "-o", omw, src); code != 0 {
		t.Fatalf("build: %s", stderr)
	}
	code, out, stderr := runCtl(t, "upload", "-addr", addr, omw)
	if code != 0 {
		t.Fatalf("upload: %s", stderr)
	}
	var up netserve.UploadResponse
	if err := json.Unmarshal([]byte(out), &up); err != nil {
		t.Fatal(err)
	}

	var ids []string
	for _, m := range target.Machines() {
		code, out, stderr := runCtl(t, "exec", "-addr", addr, "-module", up.Hash, "-target", m.Name)
		if code != 0 {
			t.Fatalf("exec %s: %s", m.Name, stderr)
		}
		var resp netserve.ExecResponse
		if err := json.Unmarshal([]byte(out), &resp); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.ID)

		code, rendered, stderr := runCtl(t, "trace", "-addr", addr, resp.ID)
		if code != 0 {
			t.Fatalf("trace %s: %s", resp.ID, stderr)
		}
		// The tree names every stage the job went through, with a
		// nonzero duration on each line (the span layer clamps real
		// spans to >= 1ns, and the rendering prints them in µs or
		// better).
		for _, stage := range []string{"decode", "queue_wait", "cache", "verify", "translate", "execute"} {
			if !strings.Contains(rendered, stage) {
				t.Errorf("%s: rendering missing stage %q:\n%s", m.Name, stage, rendered)
			}
		}
		if strings.Contains(rendered, " 0s") {
			t.Errorf("%s: a stage rendered with zero duration:\n%s", m.Name, rendered)
		}
		// The attribution line reads "insts N  app N  sandbox N (P%)
		// sched N"; a store-heavy module must show nonzero sandbox work.
		if !strings.Contains(rendered, "sandbox") {
			t.Errorf("%s: rendering missing the sandbox attribution line:\n%s", m.Name, rendered)
		}
		if strings.Contains(rendered, "sandbox 0 (") {
			t.Errorf("%s: sandbox overhead rendered as zero:\n%s", m.Name, rendered)
		}

		// -json emits the raw trace.
		code, raw, _ := runCtl(t, "trace", "-addr", addr, "-json", resp.ID)
		if code != 0 {
			t.Fatalf("trace -json %s failed", resp.ID)
		}
		var m2 map[string]any
		if err := json.Unmarshal([]byte(raw), &m2); err != nil {
			t.Fatalf("trace -json output not JSON: %v", err)
		}
		if m2["id"] != resp.ID {
			t.Fatalf("trace -json id %v, want %s", m2["id"], resp.ID)
		}
	}

	// -recent lists all four jobs, newest first.
	code, out, stderr = runCtl(t, "trace", "-addr", addr, "-recent")
	if code != 0 {
		t.Fatalf("trace -recent: %s", stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(ids) {
		t.Fatalf("recent listed %d jobs, want %d:\n%s", len(lines), len(ids), out)
	}
	if !strings.HasPrefix(lines[0], ids[len(ids)-1]) {
		t.Errorf("recent not newest-first:\n%s", out)
	}

	// Unknown IDs are an infrastructure error.
	if code, _, _ := runCtl(t, "trace", "-addr", addr, "bogus-id"); code == 0 {
		t.Error("trace of unknown ID exited 0")
	}
}
