package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omniware/internal/netserve"
	"omniware/internal/serve"
	"omniware/internal/target"
)

// testServer boots a real netserve handler in-process; omnictl's run()
// is driven directly with captured streams, so every command path and
// exit code is exercised without subprocesses.
func testServer(t *testing.T) string {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 2})
	h, err := netserve.New(netserve.Config{Server: srv, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

func runCtl(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeSrc(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.c")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The full client workflow: build a module, upload it, execute it on
// every target with parity checking, read metrics. Exit 0 throughout.
func TestBuildUploadExec(t *testing.T) {
	addr := testServer(t)
	src := writeSrc(t, `int main(void){ int i, a = 1; for (i = 0; i < 5; i++) a *= 2; return a; }`)
	omw := filepath.Join(t.TempDir(), "prog.omw")

	code, _, stderr := runCtl(t, "build", "-o", omw, src)
	if code != 0 {
		t.Fatalf("build exit %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "insts") {
		t.Fatalf("build summary missing: %q", stderr)
	}

	code, out, stderr := runCtl(t, "upload", "-addr", addr, omw)
	if code != 0 {
		t.Fatalf("upload exit %d: %s", code, stderr)
	}
	var up netserve.UploadResponse
	if err := json.Unmarshal([]byte(out), &up); err != nil {
		t.Fatalf("upload output: %v\n%s", err, out)
	}
	if up.Hash == "" {
		t.Fatalf("no hash in %+v", up)
	}

	for _, m := range target.Machines() {
		code, out, stderr := runCtl(t, "exec", "-addr", addr, "-module", up.Hash, "-target", m.Name, "-check")
		if code != 0 {
			t.Fatalf("%s exit %d: %s", m.Name, code, stderr)
		}
		var res netserve.ExecResponse
		if err := json.Unmarshal([]byte(out), &res); err != nil {
			t.Fatalf("exec output: %v\n%s", err, out)
		}
		if res.Status != "ok" || res.Exit != 32 || res.Parity == nil || !*res.Parity {
			t.Fatalf("%s: %+v", m.Name, res)
		}
	}

	code, out, _ = runCtl(t, "metrics", "-addr", addr, "-text")
	if code != 0 || !strings.Contains(out, "jobs_run           4") {
		t.Fatalf("metrics exit %d:\n%s", code, out)
	}
	code, out, _ = runCtl(t, "health", "-addr", addr)
	if code != 0 || !strings.Contains(out, "ok") {
		t.Fatalf("health exit %d: %s", code, out)
	}
}

// A faulting module is exit 1 (contained fault, service fine); the
// JSON on stdout still carries the full outcome.
func TestExecFaultExitsOne(t *testing.T) {
	addr := testServer(t)
	src := writeSrc(t, `int main(void){ int *p = (int *)0x70000000; return *p; }`)
	omw := filepath.Join(t.TempDir(), "wild.omw")
	if code, _, stderr := runCtl(t, "build", "-o", omw, src); code != 0 {
		t.Fatalf("build: %s", stderr)
	}
	code, out, _ := runCtl(t, "upload", "-addr", addr, omw)
	if code != 0 {
		t.Fatal(out)
	}
	var up netserve.UploadResponse
	if err := json.Unmarshal([]byte(out), &up); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCtl(t, "exec", "-addr", addr, "-module", up.Hash, "-target", "mips")
	if code != 1 {
		t.Fatalf("fault exit %d, want 1\n%s", code, out)
	}
	var res netserve.ExecResponse
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "fault(contained)" {
		t.Fatalf("fault outcome %+v", res)
	}
}

// Infrastructure errors are exit 2: unknown commands, missing flags,
// unreachable servers, bad modules.
func TestInfraErrorsExitTwo(t *testing.T) {
	addr := testServer(t)
	cases := [][]string{
		{},
		{"frobnicate"},
		{"build"},
		{"build", "-o", filepath.Join(t.TempDir(), "x.omw"), "/no/such/file.c"},
		{"upload", "-addr", addr, "/no/such/file.omw"},
		{"upload", "-addr", "http://127.0.0.1:1", os.Args[0]},
		{"exec", "-addr", addr},
		{"exec", "-addr", addr, "-module", "deadbeef"},
		{"metrics", "-addr", "http://127.0.0.1:1"},
	}
	for _, args := range cases {
		if code, _, _ := runCtl(t, args...); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
	// Uploading a file that exists but is not a module: the server
	// rejects it, the client reports infra failure.
	junk := writeSrc(t, "not a module")
	if code, _, stderr := runCtl(t, "upload", "-addr", addr, junk); code != 2 || !strings.Contains(stderr, "400") {
		t.Errorf("junk upload exit %d, stderr %q", code, stderr)
	}
}

// The audit subcommand renders the daemon's static-analysis report:
// stack proof, capability manifest, per-target cost bounds. A
// recursive module is reported with its cycle named.
func TestAuditCommand(t *testing.T) {
	addr := testServer(t)
	src := writeSrc(t, `
int dig(int n) { if (n == 0) return 1; return dig(n - 1) * 2; }
int main(void) { _print_int(dig(5)); return 0; }
`)
	omw := filepath.Join(t.TempDir(), "rec.omw")
	if code, _, stderr := runCtl(t, "build", "-o", omw, src); code != 0 {
		t.Fatalf("build: %s", stderr)
	}
	code, out, _ := runCtl(t, "upload", "-addr", addr, omw)
	if code != 0 {
		t.Fatal(out)
	}
	var up netserve.UploadResponse
	if err := json.Unmarshal([]byte(out), &up); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCtl(t, "audit", "-addr", addr, up.Hash)
	if code != 0 {
		t.Fatalf("audit exit %d: %s", code, stderr)
	}
	for _, want := range []string{"UNBOUNDED", "dig -> dig", "print_int", "cost    mips", "digest"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit rendering missing %q:\n%s", want, out)
		}
	}
	code, out, _ = runCtl(t, "audit", "-addr", addr, "-json", up.Hash)
	if code != 0 {
		t.Fatal(out)
	}
	var rep map[string]any
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("audit -json output: %v\n%s", err, out)
	}
	if rep["hash"] != up.Hash {
		t.Fatalf("report names %v, want %s", rep["hash"], up.Hash)
	}
	if code, _, _ := runCtl(t, "audit", "-addr", addr, "cafebabe"); code != 2 {
		t.Error("audit of unknown hash not an infra error")
	}
}
