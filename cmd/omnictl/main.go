// omnictl is the client for omniserved: it compiles OmniC programs
// into wire-format (OMW) module blobs, uploads them, executes them on
// the daemon's simulated targets, and reads the daemon's metrics.
//
// Usage:
//
//	omnictl build -o mod.omw src.c [src2.c ...]
//	omnictl upload -addr URL mod.omw
//	omnictl exec -addr URL -module HASH -target mips [-check] [flags]
//	omnictl audit -addr URL HASH [-json]
//	omnictl metrics -addr URL [-text|-prom]
//	omnictl bench -addr URL [-duration 10s] [-json]
//	omnictl trace -addr URL ID          (or -recent [-n N])
//	omnictl top -addr URL [-interval 2s] [-count N] [-plain]
//	omnictl health -addr URL
//	omnictl cluster status -addrs URL,URL,...
//	omnictl cluster ring -addrs URL,URL,... [-fanout n] [HASH ...]
//	omnictl cluster metrics -addrs URL,URL,... [-per-node]
//	omnictl cluster exec -addrs URL,URL,... -module HASH [exec flags]
//	omnictl cluster upload -addrs URL,URL,... mod.omw
//
// cluster talks to an omnicluster through the same hash-routing
// failover client the load generator uses: status polls every member's
// health and peer-fill counters, ring prints the consistent-hash
// ownership (per module hash when given), metrics sums every member's
// snapshot into one fleet view, and upload/exec route to a module's
// ring owners with automatic failover past dead members.
//
// bench is the observation side of a load run: it snapshots the
// daemon's metrics, waits for the window (during which omniload — or
// anything else — drives the server), snapshots again, and prints the
// interval delta in the same format omniload uses for its reports:
// jobs run, cache hit rate over the window, sandbox-overhead
// percentage, and per-stage latency quantiles computed from histogram
// bucket deltas, not lifetime aggregates.
//
// audit fetches the daemon's static-analysis report for an uploaded
// module — worst-case stack depth (or the recursion cycle that defeats
// it), per-target static cycle bounds, the host-call capability
// manifest, and the per-function call-graph summary — rendered as a
// table, or raw with -json.
//
// trace renders a finished job's span tree — decode through verify,
// translate, cache and execute, with per-stage durations — plus the
// dynamic instruction attribution and the module's sandbox-overhead
// percentage; -json prints the raw trace instead. When a job
// peer-filled from another cluster member, the origin's tree carries
// the remote node's own spans, each annotated with its node address.
//
// top is the live fleet dashboard: it polls one node's
// /v1/cluster/metrics fan-out (any member aggregates the whole
// cluster) and refreshes a terminal view of fleet jobs/sec, stage
// latency quantiles over the interval, per-target sandbox overhead,
// per-peer quarantine and failover attribution, and the slowest
// traces fleet-wide. -plain suppresses the screen clearing (one
// snapshot block per interval — what the CI smoke asserts on), and
// -count bounds the refreshes.
//
// upload and exec print the server's JSON response on stdout, so
// scripts can pipe them into a JSON tool (the CI smoke test does).
//
// Exit codes follow the serving convention (serve.ExitOK and
// friends, shared with omniserve): 0 for a clean outcome; 1 when the
// executed module faulted or failed (contained — the service itself
// is fine); 2 for infrastructure errors — bad flags, unreachable
// server, rejected uploads, or a -check run that lost interpreter
// parity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"omniware/internal/cc"
	"omniware/internal/cluster"
	"omniware/internal/core"
	"omniware/internal/load"
	"omniware/internal/netserve"
	"omniware/internal/scope"
	"omniware/internal/serve"
	"omniware/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: omnictl {build|upload|exec|audit|metrics|bench|trace|top|health|cluster} [flags]")
	return serve.ExitInfra
}

// run is main minus the process exit, so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "build":
		return cmdBuild(rest, stdout, stderr)
	case "upload":
		return cmdUpload(rest, stdout, stderr)
	case "exec":
		return cmdExec(rest, stdout, stderr)
	case "audit":
		return cmdAudit(rest, stdout, stderr)
	case "metrics":
		return cmdMetrics(rest, stdout, stderr)
	case "bench":
		return cmdBench(rest, stdout, stderr)
	case "trace":
		return cmdTrace(rest, stdout, stderr)
	case "health":
		return cmdHealth(rest, stdout, stderr)
	case "top":
		return cmdTop(rest, stdout, stderr)
	case "cluster":
		return cmdCluster(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "omnictl: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "omnictl: %v\n", err)
	return serve.ExitInfra
}

func newFlagSet(name string, stderr io.Writer) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("omnictl "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "omniserved base URL")
	return fs, addr
}

func printJSON(stdout io.Writer, v any) {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// cmdBuild compiles OmniC sources to a wire-format module blob — the
// bytes upload sends, byte-identical on every platform.
func cmdBuild(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("omnictl build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "mod.omw", "output module file")
	optLevel := fs.Int("O", 2, "optimization level")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "omnictl build: no source files")
		return serve.ExitInfra
	}
	var files []core.SourceFile
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return fail(stderr, err)
		}
		files = append(files, core.SourceFile{Name: path, Src: string(src)})
	}
	mod, err := core.BuildC(files, cc.Options{OptLevel: *optLevel})
	if err != nil {
		return fail(stderr, err)
	}
	blob, err := wire.EncodeModule(mod)
	if err != nil {
		return fail(stderr, err)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stderr, "omnictl: %s: %d insts, %d data bytes, %d on the wire (%s)\n",
		*out, len(mod.Text), len(mod.Data), len(blob), wire.Hash(blob))
	return serve.ExitOK
}

func cmdUpload(args []string, stdout, stderr io.Writer) int {
	fs, addr := newFlagSet("upload", stderr)
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "omnictl upload: exactly one module file")
		return serve.ExitInfra
	}
	blob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	cl := &netserve.Client{Base: *addr}
	resp, err := cl.Upload(blob)
	if err != nil {
		return fail(stderr, err)
	}
	printJSON(stdout, resp)
	return serve.ExitOK
}

func cmdExec(args []string, stdout, stderr io.Writer) int {
	fs, addr := newFlagSet("exec", stderr)
	module := fs.String("module", "", "module content hash (from upload)")
	tgt := fs.String("target", "mips", "target machine (mips|sparc|ppc|x86)")
	noSFI := fs.Bool("no-sfi", false, "run without software fault isolation")
	maxSteps := fs.Uint64("max-steps", 0, "instruction budget (0 = server default)")
	deadlineMs := fs.Int("deadline-ms", 0, "wall-clock deadline (0 = server default)")
	check := fs.Bool("check", false, "also run the interpreter and verify parity")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	if *module == "" {
		fmt.Fprintln(stderr, "omnictl exec: -module is required")
		return serve.ExitInfra
	}
	sfi := !*noSFI
	cl := &netserve.Client{Base: *addr}
	resp, err := cl.Exec(netserve.ExecRequest{
		Module:     *module,
		Target:     *tgt,
		SFI:        &sfi,
		MaxSteps:   *maxSteps,
		DeadlineMs: *deadlineMs,
		Check:      *check,
	})
	if err != nil {
		return fail(stderr, err)
	}
	printJSON(stdout, resp)
	switch {
	case *check && (resp.Parity == nil || !*resp.Parity):
		// Parity loss is a system failure, never a module failure.
		fmt.Fprintln(stderr, "omnictl: parity FAILED")
		return serve.ExitInfra
	case resp.Status != "ok":
		return serve.ExitFaults
	}
	return serve.ExitOK
}

// cmdAudit fetches and renders the static-analysis report the daemon
// holds (or derives on demand) for an uploaded module.
func cmdAudit(args []string, stdout, stderr io.Writer) int {
	fs, addr := newFlagSet("audit", stderr)
	raw := fs.Bool("json", false, "print the raw report JSON instead of the rendering")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "omnictl audit: exactly one module hash")
		return serve.ExitInfra
	}
	cl := &netserve.Client{Base: *addr}
	rep, err := cl.Audit(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	if *raw {
		printJSON(stdout, rep)
		return serve.ExitOK
	}
	fmt.Fprintf(stdout, "module  %s\n", rep.Hash)
	fmt.Fprintf(stdout, "digest  %s\n", rep.Digest())
	fmt.Fprintf(stdout, "insts   %d across %d functions, %d call edges\n",
		rep.Insts, len(rep.Functions), len(rep.Calls))
	if rep.Stack.Bounded {
		fmt.Fprintf(stdout, "stack   bounded: %d bytes worst case\n", rep.Stack.Bytes)
	} else {
		fmt.Fprintf(stdout, "stack   UNBOUNDED (%s)", rep.Stack.Reason)
		if len(rep.Stack.Cycle) > 0 {
			fmt.Fprintf(stdout, ": %s", strings.Join(rep.Stack.Cycle, " -> "))
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "capabilities %s\n", strings.Join(rep.Capabilities, " "))
	targets := make([]string, 0, len(rep.Cost))
	for t := range rep.Cost {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, t := range targets {
		c := rep.Cost[t]
		ti := rep.Targets[t]
		if c.Bounded {
			fmt.Fprintf(stdout, "cost    %-6s <= %d cycles (%d native insts, %d blocks)\n",
				t, c.Cycles, ti.Insts, ti.Blocks)
		} else {
			fmt.Fprintf(stdout, "cost    %-6s unbounded (%s; %d native insts, %d blocks)\n",
				t, c.Reason, ti.Insts, ti.Blocks)
		}
	}
	fmt.Fprintf(stdout, "%-20s %6s %10s %10s  %s\n", "function", "insts", "frame", "stack", "syscalls")
	for _, f := range rep.Functions {
		frame, stack := fmt.Sprintf("%d", f.FrameBytes), fmt.Sprintf("%d", f.StackBytes)
		if f.FrameBytes < 0 {
			frame = "?"
		}
		if f.StackBytes < 0 {
			stack = "?"
		}
		fmt.Fprintf(stdout, "%-20s %6d %10s %10s  %s\n",
			f.Name, f.Insts, frame, stack, strings.Join(f.Syscalls, " "))
	}
	return serve.ExitOK
}

func cmdMetrics(args []string, stdout, stderr io.Writer) int {
	fs, addr := newFlagSet("metrics", stderr)
	text := fs.Bool("text", false, "print the fixed-order text form instead of JSON")
	prom := fs.Bool("prom", false, "print the Prometheus exposition format instead of JSON")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	cl := &netserve.Client{Base: *addr}
	if *prom {
		out, err := cl.MetricsProm()
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprint(stdout, out)
		return serve.ExitOK
	}
	snap, err := cl.Metrics()
	if err != nil {
		return fail(stderr, err)
	}
	if *text {
		fmt.Fprint(stdout, snap.Text())
	} else {
		printJSON(stdout, snap)
	}
	return serve.ExitOK
}

// cmdBench brackets an observation window with two metrics snapshots
// and prints the server-side delta. The subtraction, quantile
// computation and rendering are the load package's — a bench window
// and an omniload report describe the same interval the same way.
func cmdBench(args []string, stdout, stderr io.Writer) int {
	fs, addr := newFlagSet("bench", stderr)
	dur := fs.Duration("duration", 10*time.Second, "observation window")
	raw := fs.Bool("json", false, "print the delta as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	cl := &netserve.Client{Base: *addr}
	before, err := cl.Metrics()
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stderr, "omnictl: observing %s for %s\n", *addr, *dur)
	time.Sleep(*dur)
	after, err := cl.Metrics()
	if err != nil {
		return fail(stderr, err)
	}
	d := load.Delta(*before, *after)
	if *raw {
		printJSON(stdout, d)
		return serve.ExitOK
	}
	fmt.Fprintf(stdout, "window %s\n%s", *dur, load.FormatServer(d))
	return serve.ExitOK
}

// cmdTrace fetches and renders one job's span tree, or lists recent
// jobs with -recent.
func cmdTrace(args []string, stdout, stderr io.Writer) int {
	fs, addr := newFlagSet("trace", stderr)
	recent := fs.Bool("recent", false, "list recent finished jobs instead of one trace")
	n := fs.Int("n", 16, "with -recent, how many jobs to list")
	raw := fs.Bool("json", false, "print the raw trace JSON instead of the tree rendering")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	cl := &netserve.Client{Base: *addr}
	if *recent {
		list, err := cl.RecentTraces(*n)
		if err != nil {
			return fail(stderr, err)
		}
		if *raw {
			printJSON(stdout, list)
			return serve.ExitOK
		}
		for _, s := range list {
			fmt.Fprintf(stdout, "%-32s %-6s %-8s %8dus %10d insts  sandbox %.2f%%\n",
				s.ID, s.Target, s.Status, s.DurUs, s.Insts, s.SandboxPct)
		}
		return serve.ExitOK
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "omnictl trace: exactly one job ID (or -recent)")
		return serve.ExitInfra
	}
	tr, err := cl.Trace(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	if *raw {
		printJSON(stdout, tr)
		return serve.ExitOK
	}
	fmt.Fprint(stdout, tr.Render())
	return serve.ExitOK
}

// cmdTop is the refreshing fleet dashboard. Every interval it asks
// one node for the fleet-merged view (the node fans out to its
// members) and renders rates and interval quantiles against the
// previous sample. The first frame has no interval to subtract, so it
// shows lifetime numbers and says so.
func cmdTop(args []string, stdout, stderr io.Writer) int {
	fs, addr := newFlagSet("top", stderr)
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	count := fs.Int("count", 0, "stop after N frames (0 = run until interrupted)")
	plain := fs.Bool("plain", false, "no screen clearing: print each frame as a block (for CI and logs)")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	if *interval <= 0 {
		fmt.Fprintln(stderr, "omnictl top: -interval must be positive")
		return serve.ExitInfra
	}
	cl := &netserve.Client{Base: *addr}
	var prev *scope.Fleet
	for frame := 0; *count <= 0 || frame < *count; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		cur, err := cl.ClusterMetrics()
		if err != nil {
			return fail(stderr, err)
		}
		if !*plain {
			fmt.Fprint(stdout, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprint(stdout, scope.RenderTop(cur, prev, *interval))
		if *plain {
			fmt.Fprintln(stdout)
		}
		prev = cur
	}
	return serve.ExitOK
}

// newClusterFlagSet is newFlagSet for cluster subcommands: -addrs
// instead of -addr, parsed into a member list.
func newClusterFlagSet(name string, stderr io.Writer) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("omnictl cluster "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	addrs := fs.String("addrs", "", "comma-separated cluster member base URLs")
	return fs, addrs
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func cmdCluster(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: omnictl cluster {status|ring|metrics|upload|exec} -addrs URL,URL,... [flags]")
		return serve.ExitInfra
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "status":
		return cmdClusterStatus(rest, stdout, stderr)
	case "ring":
		return cmdClusterRing(rest, stdout, stderr)
	case "metrics":
		return cmdClusterMetrics(rest, stdout, stderr)
	case "upload":
		return cmdClusterUpload(rest, stdout, stderr)
	case "exec":
		return cmdClusterExec(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "omnictl cluster: unknown subcommand %q\n", sub)
		return serve.ExitInfra
	}
}

// cmdClusterStatus polls every member: health, then the cluster
// section of its metrics (peer-fill hits, quarantines, failovers).
// Dead members are reported, not fatal — that is the point of asking.
func cmdClusterStatus(args []string, stdout, stderr io.Writer) int {
	fs, addrs := newClusterFlagSet("status", stderr)
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	members := splitAddrs(*addrs)
	if len(members) == 0 {
		fmt.Fprintln(stderr, "omnictl cluster status: -addrs is required")
		return serve.ExitInfra
	}
	down := 0
	for _, m := range members {
		cl := &netserve.Client{Base: m}
		if err := cl.Health(); err != nil {
			down++
			fmt.Fprintf(stdout, "%-28s DOWN  %v\n", m, err)
			continue
		}
		snap, err := cl.Metrics()
		if err != nil {
			down++
			fmt.Fprintf(stdout, "%-28s DOWN  metrics: %v\n", m, err)
			continue
		}
		line := fmt.Sprintf("%-28s ok    run=%d translations=%d peer_hits=%d peer_quarantines=%d",
			m, snap.JobsRun, snap.Translations, snap.CachePeerHits, snap.CachePeerQuarantines)
		if snap.Cluster != nil {
			line += fmt.Sprintf(" failovers=%d", snap.Cluster.Failovers)
		}
		fmt.Fprintln(stdout, line)
	}
	if down > 0 {
		fmt.Fprintf(stderr, "omnictl: %d of %d members down\n", down, len(members))
		return serve.ExitFaults
	}
	return serve.ExitOK
}

// cmdClusterRing prints the consistent-hash view every node and client
// share: the sorted member list, and — per module hash argument — the
// owner set in failover order.
func cmdClusterRing(args []string, stdout, stderr io.Writer) int {
	fs, addrs := newClusterFlagSet("ring", stderr)
	fanout := fs.Int("fanout", 0, "owners per module (0 = default 2)")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	members := splitAddrs(*addrs)
	if len(members) == 0 {
		fmt.Fprintln(stderr, "omnictl cluster ring: -addrs is required")
		return serve.ExitInfra
	}
	cl, err := cluster.NewClient(cluster.ClientConfig{Addrs: members, Fanout: *fanout})
	if err != nil {
		return fail(stderr, err)
	}
	for _, m := range cl.Ring().Members() {
		fmt.Fprintf(stdout, "member %s\n", m)
	}
	n := *fanout
	if n <= 0 {
		n = 2
	}
	for _, hash := range fs.Args() {
		fmt.Fprintf(stdout, "owners %s -> %s\n", hash, strings.Join(cl.Ring().Owners(hash, n), " "))
	}
	return serve.ExitOK
}

// cmdClusterMetrics prints the fleet-wide snapshot (every member
// summed, stage histograms added bucket-wise) or, with -per-node, each
// member's snapshot keyed by address.
func cmdClusterMetrics(args []string, stdout, stderr io.Writer) int {
	fs, addrs := newClusterFlagSet("metrics", stderr)
	perNode := fs.Bool("per-node", false, "print each member's snapshot instead of the fleet sum")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	members := splitAddrs(*addrs)
	if len(members) == 0 {
		fmt.Fprintln(stderr, "omnictl cluster metrics: -addrs is required")
		return serve.ExitInfra
	}
	if *perNode {
		out := map[string]any{}
		for _, m := range members {
			snap, err := (&netserve.Client{Base: m}).Metrics()
			if err != nil {
				return fail(stderr, err)
			}
			out[m] = snap
		}
		printJSON(stdout, out)
		return serve.ExitOK
	}
	sum, err := load.FleetMetrics(members)
	if err != nil {
		return fail(stderr, err)
	}
	printJSON(stdout, sum)
	return serve.ExitOK
}

// cmdClusterUpload routes a module to its ring owners (each owner gets
// a copy) with failover past dead members.
func cmdClusterUpload(args []string, stdout, stderr io.Writer) int {
	fs, addrs := newClusterFlagSet("upload", stderr)
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	members := splitAddrs(*addrs)
	if len(members) == 0 || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "omnictl cluster upload: -addrs and exactly one module file are required")
		return serve.ExitInfra
	}
	blob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	cl, err := cluster.NewClient(cluster.ClientConfig{Addrs: members})
	if err != nil {
		return fail(stderr, err)
	}
	resp, err := cl.Upload(blob)
	if err != nil {
		return fail(stderr, err)
	}
	printJSON(stdout, resp)
	return serve.ExitOK
}

// cmdClusterExec is exec through the hash-routing failover client: the
// job goes to the module's owners first and fails over past dead or
// shedding members.
func cmdClusterExec(args []string, stdout, stderr io.Writer) int {
	fs, addrs := newClusterFlagSet("exec", stderr)
	module := fs.String("module", "", "module content hash (from upload)")
	tgt := fs.String("target", "mips", "target machine (mips|sparc|ppc|x86)")
	noSFI := fs.Bool("no-sfi", false, "run without software fault isolation")
	maxSteps := fs.Uint64("max-steps", 0, "instruction budget (0 = server default)")
	deadlineMs := fs.Int("deadline-ms", 0, "wall-clock deadline (0 = server default)")
	check := fs.Bool("check", false, "also run the interpreter and verify parity")
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	members := splitAddrs(*addrs)
	if len(members) == 0 || *module == "" {
		fmt.Fprintln(stderr, "omnictl cluster exec: -addrs and -module are required")
		return serve.ExitInfra
	}
	cl, err := cluster.NewClient(cluster.ClientConfig{Addrs: members})
	if err != nil {
		return fail(stderr, err)
	}
	sfi := !*noSFI
	resp, err := cl.Exec(netserve.ExecRequest{
		Module:     *module,
		Target:     *tgt,
		SFI:        &sfi,
		MaxSteps:   *maxSteps,
		DeadlineMs: *deadlineMs,
		Check:      *check,
	})
	if err != nil {
		return fail(stderr, err)
	}
	printJSON(stdout, resp)
	switch {
	case *check && (resp.Parity == nil || !*resp.Parity):
		// Parity loss is a system failure, never a module failure.
		fmt.Fprintln(stderr, "omnictl: parity FAILED")
		return serve.ExitInfra
	case resp.Status != "ok":
		return serve.ExitFaults
	}
	return serve.ExitOK
}

func cmdHealth(args []string, stdout, stderr io.Writer) int {
	fs, addr := newFlagSet("health", stderr)
	if err := fs.Parse(args); err != nil {
		return serve.ExitInfra
	}
	cl := &netserve.Client{Base: *addr}
	if err := cl.Health(); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintln(stdout, "ok")
	return serve.ExitOK
}
