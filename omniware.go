// Package omniware is a reproduction of "Efficient and
// Language-Independent Mobile Programs" (Adl-Tabatabai, Langdale,
// Lucco, Wahbe — PLDI 1996): the Omniware mobile-code system.
//
// The package is a facade over the subsystems in internal/: the OmniC
// compiler (internal/cc), the OmniVM virtual machine definition,
// assembler and linker (internal/ovm, internal/asm, internal/link),
// the abstract-machine interpreter (internal/interp), the load-time
// translators with software fault isolation for four simulated targets
// (internal/translate, internal/target), and the native baseline
// compilers (internal/native).
//
// The basic flow mirrors the paper's Figure 2:
//
//	mod, _ := omniware.BuildC([]omniware.SourceFile{{Name: "hello.c", Src: src}}, omniware.CompilerOptions{OptLevel: 2})
//	host, _ := omniware.NewHost(mod, omniware.RunConfig{})
//	res, _, _ := host.RunTranslated(omniware.MachineByName("mips"), omniware.PaperOptions(true))
//
// Safety: with SFI enabled, a loaded module cannot store outside its
// own data segment or jump outside its own code, no matter what its
// code does; unauthorized accesses to protected pages are delivered to
// the module as access-violation exceptions.
package omniware

import (
	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/interp"
	"omniware/internal/native"
	"omniware/internal/ovm"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// SourceFile is one OmniC translation unit.
type SourceFile = core.SourceFile

// CompilerOptions configures the OmniC compiler.
type CompilerOptions = cc.Options

// Module is a linked OmniVM executable — the unit of mobile code.
type Module = ovm.Module

// Host is a loaded execution environment for one module.
type Host = core.Host

// RunConfig controls module execution (heap/stack sizes, instruction
// budget, output writer, optional read-only host segment).
type RunConfig = core.RunConfig

// Machine describes one simulated target architecture.
type Machine = target.Machine

// Program is translated or natively compiled target code.
type Program = target.Program

// TargetResult is the outcome of a simulated native execution.
type TargetResult = target.Result

// InterpResult is the outcome of an interpreted execution.
type InterpResult = interp.Result

// TranslateOptions selects translator behaviour (SFI, scheduling,
// global pointer, peephole, SFI hoisting).
type TranslateOptions = translate.Options

// Profile selects a native baseline compiler model.
type Profile = native.Profile

// Native baseline profiles.
const (
	ProfileCC  = native.ProfCC
	ProfileGCC = native.ProfGCC
)

// BuildC compiles OmniC sources into an executable module.
func BuildC(files []SourceFile, opts CompilerOptions) (*Module, error) {
	return core.BuildC(files, opts)
}

// BuildAsm assembles and links OmniVM assembly sources.
func BuildAsm(files []SourceFile, withCrt0 bool) (*Module, error) {
	return core.BuildAsm(files, withCrt0)
}

// NewHost loads a module into a fresh segmented address space.
func NewHost(mod *Module, cfg RunConfig) (*Host, error) {
	return core.NewHost(mod, cfg)
}

// Machines returns the four simulated targets in the paper's order:
// MIPS, SPARC, PowerPC, x86.
func Machines() []*Machine { return target.Machines() }

// MachineByName returns "mips", "sparc", "ppc" or "x86"; nil otherwise.
func MachineByName(name string) *Machine { return target.ByName(name) }

// PaperOptions is the translator configuration used for the paper's
// headline numbers: all translator optimizations on, SFI as given.
func PaperOptions(sfi bool) TranslateOptions { return translate.Paper(sfi) }

// DecodeModule deserializes a module from its binary (OMX) form.
func DecodeModule(data []byte) (*Module, error) { return ovm.DecodeModule(data) }
