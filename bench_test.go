// Benchmarks regenerating the paper's tables and figures. Each
// benchmark drives the full pipeline (compile -> link -> translate or
// native-compile -> simulate) for the configurations its table needs
// and reports the headline ratios as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation. The suite is built once and measurements
// are memoized inside an iteration, so ns/op reflects the cost of one
// full regeneration.
package omniware_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"omniware/internal/bench"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

// benchScale is kept small so the full table set regenerates in
// minutes; cmd/omnibench -scale 0 runs the built-in full sizes.
const benchScale = 1

func getSuite(b *testing.B) *bench.Suite {
	suiteOnce.Do(func() {
		suite, suiteErr = bench.NewSuite(benchScale)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// reportAverages parses the table's "average" row (or last row) and
// reports each column as a metric.
func reportAverages(b *testing.B, t *bench.Table) {
	if len(t.Rows) == 0 {
		return
	}
	row := t.Rows[len(t.Rows)-1]
	for i := 1; i < len(row) && i < len(t.Header); i++ {
		if v, err := strconv.ParseFloat(row[i], 64); err == nil {
			unit := strings.ReplaceAll(t.Header[i], " ", "-") + "-ratio"
			b.ReportMetric(v, unit)
		}
	}
}

func benchTable(b *testing.B, f func(*bench.Suite) (*bench.Table, error)) {
	s := getSuite(b)
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = f(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, tbl)
	b.Log("\n" + tbl.String())
}

func BenchmarkTable1(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table1() })
}

func BenchmarkTable2(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table2() })
}

func BenchmarkTable3(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table3() })
}

func BenchmarkTable4(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table4() })
}

func BenchmarkTable5(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table5() })
}

func BenchmarkTable6(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Table6() })
}

func BenchmarkFigure1(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.Figure1() })
}

func BenchmarkInterpVsTranslated(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.InterpTable() })
}

func BenchmarkSFIHoisting(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.SFIHoistTable() })
}

func BenchmarkReadProtection(b *testing.B) {
	benchTable(b, func(s *bench.Suite) (*bench.Table, error) { return s.ReadSFITable() })
}
