package omniware_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"omniware"
	"omniware/internal/translate"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	src := `
int main(void) {
	int i, acc = 0;
	for (i = 1; i <= 12; i++) acc += i * i;
	_print_int(acc);
	return acc & 0x7f;
}`
	mod, err := omniware.BuildC([]omniware.SourceFile{{Name: "t.c", Src: src}},
		omniware.CompilerOptions{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Module serialization round-trip (the "mobile" part).
	wire := mod.Encode()
	mod2, err := omniware.DecodeModule(wire)
	if err != nil {
		t.Fatal(err)
	}

	host, err := omniware.NewHost(mod2, omniware.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ires, err := host.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if ires.Faulted || host.Output() != "650" {
		t.Fatalf("interp: %+v out=%q", ires, host.Output())
	}

	for _, m := range omniware.Machines() {
		h, err := omniware.NewHost(mod2, omniware.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, prog, err := h.RunTranslated(m, omniware.PaperOptions(true))
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != ires.ExitCode || h.Output() != "650" {
			t.Errorf("%s: exit %d out %q", m.Name, res.ExitCode, h.Output())
		}
		if len(prog.Code) == 0 {
			t.Errorf("%s: empty translation", m.Name)
		}
	}
	if omniware.MachineByName("nope") != nil {
		t.Error("bogus machine resolved")
	}
}

// Differential property test: random straight-line integer OmniVM
// programs must behave identically on the interpreter and on every
// translated target, with and without SFI. This is the strongest
// cross-implementation check in the repository: three independent
// execution engines (interpreter semantics, translator expansion,
// simulator semantics) must agree instruction by instruction.
func TestDifferentialRandomPrograms(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial) * 7919))
		src := randProgram(r)
		mod, err := omniware.BuildAsm([]omniware.SourceFile{{Name: "r.s", Src: src}}, true)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		ih, err := omniware.NewHost(mod, omniware.RunConfig{MaxSteps: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ih.RunInterp()
		if err != nil {
			t.Fatalf("trial %d: interp: %v\n%s", trial, err, src)
		}
		for _, m := range omniware.Machines() {
			for _, sfi := range []bool{false, true} {
				h, err := omniware.NewHost(mod, omniware.RunConfig{MaxSteps: 100_000})
				if err != nil {
					t.Fatal(err)
				}
				res, _, err := h.RunTranslated(m, translate.Options{
					SFI: sfi, Schedule: true, GlobalPointer: true, Peephole: true,
				})
				if err != nil {
					t.Fatalf("trial %d %s: %v\n%s", trial, m.Name, err, src)
				}
				if res.Faulted != want.Faulted || (!res.Faulted && res.ExitCode != want.ExitCode) {
					t.Fatalf("trial %d %s sfi=%v: exit %d/faulted=%v, interp %d/faulted=%v\n%s",
						trial, m.Name, sfi, res.ExitCode, res.Faulted, want.ExitCode, want.Faulted, src)
				}
			}
		}
	}
}

// randProgram emits a straight-line OmniVM assembly program over
// integer registers r1..r9 and FP registers f1..f6, with loads and
// stores confined to a scratch buffer.
func randProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString(".text\n.globl main\nmain:\n")
	b.WriteString("\tlda r10, buf\n")
	// Seed registers.
	for reg := 1; reg <= 9; reg++ {
		fmt.Fprintf(&b, "\tldi r%d, %d\n", reg, int32(r.Uint32()))
	}
	// Seed FP registers from integer values (exactly representable, so
	// every engine agrees bit for bit).
	for reg := 1; reg <= 6; reg++ {
		fmt.Fprintf(&b, "\tcvtwd f%d, r%d\n", reg, reg)
	}
	ops2 := []string{"add", "sub", "mul", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu"}
	opsI := []string{"addi", "muli", "andi", "ori", "xori"}
	fops := []string{"faddd", "fsubd", "fmuld"}
	n := 20 + r.Intn(40)
	for i := 0; i < n; i++ {
		rd := 1 + r.Intn(9)
		ra := 1 + r.Intn(9)
		rb := 1 + r.Intn(9)
		fd := 1 + r.Intn(6)
		fa := 1 + r.Intn(6)
		fb := 1 + r.Intn(6)
		switch r.Intn(13) {
		case 0, 1, 2, 3:
			fmt.Fprintf(&b, "\t%s r%d, r%d, r%d\n", ops2[r.Intn(len(ops2))], rd, ra, rb)
		case 4, 5:
			fmt.Fprintf(&b, "\t%s r%d, r%d, %d\n", opsI[r.Intn(len(opsI))], rd, ra, int32(r.Uint32()))
		case 6:
			fmt.Fprintf(&b, "\tslli r%d, r%d, %d\n", rd, ra, r.Intn(31))
		case 7:
			// Bounded store then load through the buffer, sometimes
			// with sub-word widths.
			off := r.Intn(60) * 4
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "\tstw r%d, %d(r10)\n\tldw r%d, %d(r10)\n", ra, off, rd, off)
			case 1:
				fmt.Fprintf(&b, "\tsth r%d, %d(r10)\n\tldhu r%d, %d(r10)\n", ra, off, rd, off)
			default:
				fmt.Fprintf(&b, "\tstb r%d, %d(r10)\n\tldb r%d, %d(r10)\n", ra, off, rd, off)
			}
		case 8:
			fmt.Fprintf(&b, "\textb r%d, r%d, %d\n", rd, ra, r.Intn(4))
		case 9:
			// Division guarded against zero: or the divisor with 1.
			fmt.Fprintf(&b, "\tori r%d, r%d, 1\n", rb, rb)
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "\tdivu r%d, r%d, r%d\n", rd, ra, rb)
			} else {
				fmt.Fprintf(&b, "\tremu r%d, r%d, r%d\n", rd, ra, rb)
			}
		case 10:
			fmt.Fprintf(&b, "\t%s f%d, f%d, f%d\n", fops[r.Intn(len(fops))], fd, fa, fb)
		case 11:
			// Round-trip FP through memory (double slots above 240).
			fmt.Fprintf(&b, "\tstd f%d, 240(r10)\n\tldd f%d, 240(r10)\n", fa, fd)
		case 12:
			fmt.Fprintf(&b, "\tinsb r%d, r%d, r%d\n", rd, ra, rb)
		}
	}
	// Mix FP results back into the integer checksum via the float32
	// bit pattern (movfw), which is deterministic on every engine.
	for reg := 1; reg <= 6; reg++ {
		fmt.Fprintf(&b, "\tmovfw r%d, f%d\n", reg+2, reg)
	}
	// Fold everything into r1.
	for reg := 2; reg <= 9; reg++ {
		fmt.Fprintf(&b, "\txor r1, r1, r%d\n", reg)
	}
	b.WriteString("\tandi r1, r1, 255\n\tret\n")
	b.WriteString(".bss\nbuf: .space 256\n")
	return b.String()
}
